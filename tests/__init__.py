"""Test package."""
