"""Test package."""
