"""Tests for the stabilization-measurement harness and the experiment entry points."""

from __future__ import annotations

import pytest

from repro.analysis import experiments
from repro.analysis.convergence import (
    height_controlled_tree,
    measure_dftno,
    measure_layered_stabilization,
    measure_stno,
    sweep_dftno_sizes,
    sweep_stno_heights,
)
from repro.graphs import generators
from repro.graphs.properties import radius_from_root
from repro.runtime.daemon import CentralDaemon
from repro.substrates.spanning_tree import BFSSpanningTree


# ----------------------------------------------------------------------
# measurement primitives
# ----------------------------------------------------------------------
def test_measure_dftno_reports_both_layers(small_random):
    sample = measure_dftno(small_random, seed=1)
    assert sample.converged
    assert sample.substrate_steps is not None
    assert sample.full_steps is not None
    assert sample.full_steps >= sample.substrate_steps
    assert sample.overlay_steps == sample.full_steps - sample.substrate_steps
    assert sample.protocol == "dftno"
    row = sample.as_row()
    assert row["overlay_steps"] == sample.overlay_steps


def test_measure_stno_reports_both_layers(small_random):
    sample = measure_stno(small_random, tree="bfs", seed=2)
    assert sample.converged
    assert sample.overlay_rounds is not None
    assert sample.protocol.startswith("stno")


def test_measure_with_explicit_daemon_and_parameter(small_ring):
    sample = measure_dftno(small_ring, daemon=CentralDaemon("round_robin"), seed=3, parameter=99)
    assert sample.parameter == 99
    assert sample.daemon.startswith("central")


def test_measure_layered_stabilization_unconverged_budget(small_random):
    from repro.core.dftno import build_dftno

    protocol = build_dftno()
    sample = measure_layered_stabilization(
        small_random,
        protocol,
        substrate_predicate=lambda net, cfg: False,
        full_predicate=lambda net, cfg: False,
        seed=4,
        max_steps=20,
    )
    assert not sample.converged
    assert sample.overlay_steps is None
    assert sample.total_steps == 20


def test_height_controlled_tree_has_requested_height():
    for height in (1, 3, 7, 11):
        network = height_controlled_tree(12, height, seed=5)
        assert network.n == 12
        assert radius_from_root(network) == height
    with pytest.raises(ValueError):
        height_controlled_tree(5, 10, seed=1)


def test_sweep_dftno_sizes_produces_one_sample_per_trial():
    samples = sweep_dftno_sizes((6, 8), family="random_tree", trials=2, seed=6)
    assert len(samples) == 4
    assert all(sample.converged for sample in samples)
    assert {sample.parameter for sample in samples} == {6, 8}


def test_sweep_stno_heights_uses_actual_heights():
    samples = sweep_stno_heights(10, (2, 5), trials=1, seed=7)
    assert len(samples) == 2
    assert {sample.parameter for sample in samples} == {2, 5}


# ----------------------------------------------------------------------
# experiment entry points (small parameters)
# ----------------------------------------------------------------------
def test_exp_t1_rows_and_fit():
    result = experiments.exp_t1_dftno_stabilization(sizes=(6, 10, 14), trials=1, seed=1)
    assert len(result["rows"]) == 3
    assert result["fit"]["slope"] > 0
    assert all(row["converged"] == row["trials"] for row in result["rows"])


def test_exp_t1_is_deterministic():
    # Seed discipline: every stochastic call flows from an explicit seed (via
    # the campaign engine's hash-derived per-task seeds), so regenerating an
    # experiment yields identical samples, not just similar aggregates.
    first = experiments.exp_t1_dftno_stabilization(sizes=(6, 8), trials=1, seed=9)
    second = experiments.exp_t1_dftno_stabilization(sizes=(6, 8), trials=1, seed=9)
    assert first == second


def test_exp_t1_overlay_steps_grow_with_n():
    result = experiments.exp_t1_dftno_stabilization(sizes=(6, 20), trials=2, seed=2)
    rows = result["rows"]
    assert rows[-1]["overlay_steps_mean"] > rows[0]["overlay_steps_mean"]


def test_exp_t2_rows_and_fit():
    result = experiments.exp_t2_stno_stabilization(n=14, heights=(2, 6, 13), trials=1, seed=3)
    assert len(result["rows"]) == 3
    assert result["fit"]["slope"] > 0


def test_exp_t2_overlay_rounds_grow_with_height():
    result = experiments.exp_t2_stno_stabilization(n=16, heights=(2, 15), trials=2, seed=4)
    rows = result["rows"]
    assert rows[-1]["overlay_rounds_mean"] > rows[0]["overlay_rounds_mean"]


def test_exp_t3_space_rows():
    result = experiments.exp_t3_space(sizes=(8, 16))
    assert len(result["rows"]) == 8
    for row in result["rows"]:
        assert row["dftno_total_max_bits"] > 0
        assert row["stno_total_max_bits"] > 0


def test_exp_f1_reproduces_figure_3_1_1():
    result = experiments.exp_f1_figure_3_1_1()
    assert result["matches_figure"]
    assert result["final_names"] == result["expected_names"]
    named = {event["thesis_label"]: event["assigned_name"] for event in result["events"]}
    assert named == {"r": 0, "b": 1, "d": 2, "c": 3, "a": 4}
    steps = [event["step"] for event in result["events"]]
    assert steps == sorted(steps)


def test_exp_f2_reproduces_figure_4_1_1():
    result = experiments.exp_f2_figure_4_1_1()
    assert result["matches_figure"]
    assert len(result["rows"]) == 5


def test_exp_f3_chordal_properties_hold():
    result = experiments.exp_f3_chordal_properties(sizes=(5, 7))
    assert result["all_valid"]
    assert all(row["locally_oriented"] and row["edge_symmetric"] for row in result["rows"])


def test_exp_a1_orientation_saves_messages():
    result = experiments.exp_a1_message_complexity(sizes=(8, 12), seed=5)
    savings = result["savings"]
    assert savings["traversal_ratio_mean"] > 1.0
    assert savings["election_ratio_mean"] > 1.0
    assert savings["broadcast_ratio_mean"] >= 1.0
    for row in result["rows"]:
        assert row["traversal_msgs_oriented"] <= row["traversal_msgs_unoriented"]


def test_exp_a2_dfs_equivalence():
    result = experiments.exp_a2_dfs_equivalence(sizes=(6, 9), trials=1, seed=6)
    assert result["all_identical"]
    assert all(row["dftno_matches_preorder"] for row in result["rows"])


def test_exp_r1_all_runs_converge():
    result = experiments.exp_r1_self_stabilization(trials=3, size=8, seed=7)
    assert result["all_converged"]
    assert {row["protocol"] for row in result["rows"]} == {"dftno", "stno-bfs", "stno-dfs"}


def test_exp_r1_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        experiments.exp_r1_self_stabilization(trials=1, size=6, protocols=("nope",))


def test_exp_r2_daemon_ablation_converges_under_all_daemons():
    result = experiments.exp_r2_daemon_ablation(size=8, trials=1, seed=8)
    assert result["all_converged"]
    daemons = {row["daemon"] for row in result["rows"]}
    assert daemons == {"central", "distributed", "synchronous", "adversarial"}
