"""Tests for the reporting helpers and the space-accounting rows."""

from __future__ import annotations

import math

import pytest

from repro.analysis.reporting import format_table, linear_fit, ratio, summarize
from repro.analysis.space import orientation_space_row, space_rows
from repro.graphs import generators


# ----------------------------------------------------------------------
# format_table
# ----------------------------------------------------------------------
def test_format_table_renders_columns_in_order():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.5}]
    text = format_table(rows, columns=["b", "a"], title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert lines[1].startswith("b")
    assert "2.50" in text and "10" in text


def test_format_table_defaults_and_booleans():
    text = format_table([{"ok": True, "label": "x"}])
    assert "yes" in text
    assert "label" in text


def test_format_table_empty_rows():
    assert "(no data)" in format_table([], title="empty")
    assert format_table([]) == "(no data)"


def test_format_table_missing_cells_render_blank():
    text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
    assert "3" in text


# ----------------------------------------------------------------------
# linear_fit / summarize / ratio
# ----------------------------------------------------------------------
def test_linear_fit_recovers_exact_line():
    xs = [1, 2, 3, 4, 5]
    ys = [3 * x + 2 for x in xs]
    fit = linear_fit(xs, ys)
    assert fit["slope"] == pytest.approx(3.0)
    assert fit["intercept"] == pytest.approx(2.0)
    assert fit["r_squared"] == pytest.approx(1.0)


def test_linear_fit_constant_series_has_unit_r_squared():
    fit = linear_fit([1, 2, 3], [5, 5, 5])
    assert fit["slope"] == pytest.approx(0.0)
    assert fit["r_squared"] == pytest.approx(1.0)


def test_linear_fit_noisy_data_r_squared_below_one():
    fit = linear_fit([1, 2, 3, 4], [2, 1, 4, 3])
    assert 0.0 <= fit["r_squared"] < 1.0


def test_linear_fit_input_validation():
    with pytest.raises(ValueError):
        linear_fit([1, 2], [1])


def test_linear_fit_degenerate_inputs_have_none_slope():
    assert linear_fit([1], [2])["slope"] is None
    assert linear_fit([], [])["slope"] is None
    assert linear_fit([2, 2, 2], [1, 2, 3])["slope"] is None


def test_summarize_statistics():
    stats = summarize([2, 4, 6])
    assert stats["count"] == 3
    assert stats["mean"] == pytest.approx(4.0)
    assert stats["min"] == 2 and stats["max"] == 6
    assert stats["std"] == pytest.approx(math.sqrt(8 / 3))


def test_summarize_empty_series():
    stats = summarize([])
    assert stats["count"] == 0
    assert math.isnan(stats["mean"])


def test_ratio_handles_zero_denominator():
    assert ratio(4, 2) == 2
    assert ratio(1, 0) == math.inf


# ----------------------------------------------------------------------
# Space rows (EXP-T3)
# ----------------------------------------------------------------------
def test_orientation_space_row_fields():
    row = orientation_space_row(generators.ring(16))
    assert row["n"] == 16
    assert row["max_degree"] == 2
    assert row["dftno_total_max_bits"] == row["dftno_overlay_max_bits"] + row["dftno_substrate_max_bits"]
    assert row["stno_total_max_bits"] == row["stno_overlay_max_bits"] + row["stno_substrate_max_bits"]


def test_overlay_space_identical_shape_for_both_protocols():
    # Both orientation layers store eta + pi (+ one extra log N word), so their
    # costs track each other and the Delta*logN bound.
    for network in (generators.ring(32), generators.star(32), generators.complete(16)):
        row = orientation_space_row(network)
        assert row["dftno_overlay_max_bits"] <= row["bound_delta_log_n"] + row["log_n_bits"]
        assert row["stno_overlay_max_bits"] >= row["dftno_overlay_max_bits"]


def test_dftno_substrate_is_logarithmic_and_stno_substrate_smaller_topologies():
    small = orientation_space_row(generators.ring(8))
    large = orientation_space_row(generators.ring(128))
    # Token-circulation substrate grows with log N only.
    assert large["dftno_substrate_max_bits"] <= small["dftno_substrate_max_bits"] + 10
    # Orientation overlay grows with Delta * log N: compare star hubs.
    star_small = orientation_space_row(generators.star(8))
    star_large = orientation_space_row(generators.star(64))
    assert star_large["dftno_overlay_max_bits"] > 4 * star_small["dftno_overlay_max_bits"] / 2


def test_space_rows_covers_all_networks():
    networks = [generators.ring(8), generators.star(8)]
    rows = space_rows(networks)
    assert len(rows) == 2
    assert {row["network"] for row in rows} == {networks[0].name, networks[1].name}
