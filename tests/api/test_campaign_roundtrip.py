"""Round-trip: campaign rows through the RunSpec adapter vs a PR 2 store.

The acceptance bar for the unified API: ``stabilize`` rows (and their config
hashes) produced by the new TaskSpec -> RunSpec -> engine path must be
**byte-identical** to what the pre-API campaign engine persisted, so that
every existing store keeps resuming, deduplicating and merging correctly.

``legacy_stabilize_row`` reproduces the PR 1/PR 2 handler verbatim (direct
calls into the measurement harness, bypassing ``repro.api`` entirely); the
tests compare full JSONL store files byte for byte.
"""

from __future__ import annotations

import json

from repro.analysis.convergence import height_controlled_tree, measure_dftno, measure_stno
from repro.campaign.grid import Grid, TaskSpec
from repro.campaign.runner import run_task
from repro.campaign.store import JsonlResultStore
from repro.campaign.tasks import runspec_for_task
from repro.graphs import generators
from repro.runtime.daemon import make_daemon


def legacy_stabilize_row(spec: TaskSpec) -> dict[str, object]:
    """The pre-API ``stabilize`` handler, inlined exactly as PR 1/PR 2 ran it."""
    if spec.height is not None:
        network = height_controlled_tree(spec.size, spec.height, seed=spec.network_seed)
    else:
        network = generators.family(spec.family, spec.size, seed=spec.network_seed)
    daemon = make_daemon(spec.daemon)
    if spec.protocol == "dftno":
        sample = measure_dftno(
            network,
            daemon=daemon,
            seed=spec.run_seed,
            parameter=spec.parameter,
            after_substrate=spec.after_substrate,
        )
    else:
        sample = measure_stno(
            network,
            tree=spec.protocol.split("-", 1)[1],
            daemon=daemon,
            seed=spec.run_seed,
            parameter=spec.parameter,
            after_substrate=spec.after_substrate,
        )
    row = sample.as_row()
    row.update(spec.identity())
    row["config_hash"] = spec.config_hash
    row["task_index"] = spec.index
    return row


ROUNDTRIP_GRIDS = (
    Grid(
        sizes=(6,),
        protocols=("dftno", "stno-bfs"),
        families=("ring", "random_connected"),
        daemons=("central",),
        trials=1,
        seed=7,
    ),
    Grid(sizes=(6,), protocols=("stno-bfs",), heights=(2,), trials=1, seed=3),
    Grid(
        sizes=(6,),
        protocols=("dftno",),
        families=("ring",),
        daemons=("distributed",),
        trials=1,
        seed=5,
        after_substrate=True,
        pair_networks=True,
    ),
)


def test_stabilize_rows_via_runspec_are_byte_identical_to_pr2(tmp_path):
    for index, grid in enumerate(ROUNDTRIP_GRIDS):
        legacy_store = JsonlResultStore(tmp_path / f"legacy-{index}.jsonl")
        api_store = JsonlResultStore(tmp_path / f"api-{index}.jsonl")
        for task in grid.expand():
            legacy_row = legacy_stabilize_row(task)
            api_row = run_task(task)
            assert api_row == legacy_row
            # Byte-level: the exact JSON the store writes.
            dump = dict(sort_keys=True, separators=(",", ":"), default=str)
            assert json.dumps(api_row, **dump) == json.dumps(legacy_row, **dump)
            legacy_store.append(legacy_row)
            api_store.append(api_row)
        # The stored rows are byte-identical (checked above, line by line);
        # the files themselves differ only in the per-row append timestamps.
        assert legacy_store.rows() == api_store.rows()


def test_runspec_adapter_keeps_config_hashes_and_derived_seeds():
    grid = ROUNDTRIP_GRIDS[0]
    for task in grid.expand():
        spec = runspec_for_task(task)
        assert spec.engine == "scheduler"
        assert spec.seed == task.run_seed
        assert spec.network.seed == task.network_seed
        assert spec.parameter == task.parameter
        assert spec.stop.after_substrate == task.after_substrate
        # Hash stability of the grid side is pinned in
        # tests/campaign/test_task_types.py; here we check the adapter does
        # not perturb the task identity it was derived from.
        assert task.config_hash == grid.expand()[task.index].config_hash


def test_resuming_a_pr2_store_through_the_api_path_skips_everything(tmp_path):
    """A store written by the legacy path resumes cleanly under the API path."""
    from repro.campaign.runner import run_grid

    grid = ROUNDTRIP_GRIDS[0]
    store = JsonlResultStore(tmp_path / "pr2.jsonl")
    for task in grid.expand():
        store.append(legacy_stabilize_row(task))
    result = run_grid(grid, store=JsonlResultStore(store.path), resume=True)
    assert result.executed == 0
    assert result.skipped == len(grid)
    assert len(result.rows) == len(grid)
