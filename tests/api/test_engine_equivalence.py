"""Equivalence of the incremental, full-scan and sharded scheduler cores.

The incremental enabled-set and the sharded multi-process engine are
optimizations, not semantics changes: for any substrate, daemon, scenario and
seed, the ``scheduler`` engine (dirty frontier re-evaluation), the
``scheduler-fullscan`` engine (historical rescan of every guard per step) and
the ``scheduler-sharded`` engine (k node blocks with frontier exchange and a
coordinator-held cross-shard daemon) must produce **identical** executions --
the same enabled set before every step, the same :class:`StepRecord` stream,
the same metrics, and the same final configuration.

These tests drive every substrate x daemon combination (and every library
scenario, which exercises the mid-run mutation paths: ``set_configuration``,
``freeze``/``unfreeze`` + ``replace_node``, ``set_network``, ``set_daemon``)
through all paths in lockstep, with guard-locality checking switched on so
the invariant the dirty frontier relies on is asserted on every evaluation.
The sharded lockstep grids run the workers through the inline harness (the
identical worker objects and message protocol, synchronously); the forked
process boundary is covered by ``tests/shard/test_multiprocess.py`` and the
registry row checks below.
"""

from __future__ import annotations

from functools import partial

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import RunSpec, NetworkSpec, run
from repro.core.dftno import build_dftno
from repro.core.stno import build_stno
from repro.graphs import generators
from repro.runtime.arrayview import HAVE_NUMPY
from repro.runtime.daemon import make_daemon
from repro.runtime.scheduler import Scheduler
from repro.scenarios.library import build_scenario, scenario_names
from repro.scenarios.runner import ScenarioRunner
from repro.shard import ShardedScheduler
from repro.substrates.dijkstra_ring import DijkstraTokenRing
from repro.substrates.pif import PIFWave
from repro.substrates.spanning_tree import BFSSpanningTree, DFSSpanningTree
from repro.substrates.token_circulation import DepthFirstTokenCirculation

DAEMONS = ("central", "distributed", "synchronous", "adversarial")

#: Shard counts the acceptance criterion pins (k=1 is the degenerate case).
SHARD_COUNTS = (1, 2, 4)

#: Every substrate / protocol stack with a network family it legally runs on.
PROTOCOLS = {
    "bfs-tree": (BFSSpanningTree, "random_connected"),
    "dfs-tree": (DFSSpanningTree, "random_connected"),
    "token-circulation": (DepthFirstTokenCirculation, "random_connected"),
    "pif": (PIFWave, "random_tree"),
    "dijkstra-ring": (DijkstraTokenRing, "ring"),
    "dftno": (build_dftno, "random_connected"),
    "stno-bfs": (lambda: build_stno(tree="bfs"), "random_connected"),
    "stno-dfs": (lambda: build_stno(tree="dfs"), "random_connected"),
}


def _scheduler_builders(shards: "int | str | None"):
    """The reference core plus the core under test.

    ``shards=None`` compares incremental vs full scan (the PR-4 pairing);
    an integer compares incremental vs the sharded engine with that many
    blocks (inline harness: same workers, same messages, no processes);
    ``"vectorized"`` compares incremental vs the batch-kernel engine (which
    must not get guard-locality checking -- that debug mode deliberately
    disables the fast path this pairing exists to hold to account).
    """
    reference = partial(Scheduler, incremental=True, check_guard_locality=True)
    if shards is None:
        candidate = partial(Scheduler, incremental=False, check_guard_locality=True)
    elif shards == "vectorized":
        from repro.runtime.vectorized import VectorizedScheduler

        candidate = partial(VectorizedScheduler, incremental=True)
    else:
        candidate = partial(
            ShardedScheduler, shards=shards, mode="inline", check_guard_locality=True
        )
    return reference, candidate


def _lockstep(
    protocol_key: str,
    daemon: str,
    seed: int,
    n: int,
    max_steps: int = 150,
    shards: int | None = None,
) -> None:
    """Run two cores in lockstep and assert every observable is identical."""
    factory, family = PROTOCOLS[protocol_key]
    schedulers = []
    for build in _scheduler_builders(shards):
        schedulers.append(
            build(
                generators.family(family, n, seed=seed),
                factory(),
                daemon=make_daemon(daemon),
                seed=seed,
            )
        )
    reference_scheduler, candidate_scheduler = schedulers
    context = f"({protocol_key}, daemon={daemon}, seed={seed}, n={n}, shards={shards})"
    try:
        assert reference_scheduler.configuration == candidate_scheduler.configuration

        for _ in range(max_steps):
            assert (
                reference_scheduler.enabled_nodes() == candidate_scheduler.enabled_nodes()
            ), f"enabled sets diverged at step {reference_scheduler.steps_executed} {context}"
            record_reference = reference_scheduler.step()
            record_candidate = candidate_scheduler.step()
            assert record_reference == record_candidate, (
                f"step records diverged at step {candidate_scheduler.steps_executed} {context}"
            )
            if record_reference is None:
                break

        assert reference_scheduler.configuration == candidate_scheduler.configuration, context
        assert reference_scheduler.metrics == candidate_scheduler.metrics, context
        assert (
            reference_scheduler.rounds_completed == candidate_scheduler.rounds_completed
        ), context
    finally:
        closer = getattr(candidate_scheduler, "close", None)
        if closer is not None:
            closer()


@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("protocol_key", sorted(PROTOCOLS))
def test_incremental_equals_fullscan_for_every_substrate_and_daemon(protocol_key, daemon):
    """Fixed-seed lockstep equivalence across the whole substrate x daemon grid."""
    _lockstep(protocol_key, daemon, seed=11, n=7)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("protocol_key", sorted(PROTOCOLS))
def test_sharded_equals_incremental_for_every_substrate_and_daemon(
    protocol_key, daemon, shards
):
    """Sharded lockstep equivalence: substrate x daemon x k in {1, 2, 4}."""
    _lockstep(protocol_key, daemon, seed=11, n=7, shards=shards)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    protocol_key=st.sampled_from(sorted(PROTOCOLS)),
    daemon=st.sampled_from(DAEMONS),
    n=st.integers(min_value=3, max_value=9),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_incremental_equals_fullscan_property(seed, protocol_key, daemon, n):
    """The lockstep equivalence holds for arbitrary seeds and sizes."""
    _lockstep(protocol_key, daemon, seed=seed, n=n, max_steps=80)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    protocol_key=st.sampled_from(sorted(PROTOCOLS)),
    daemon=st.sampled_from(DAEMONS),
    n=st.integers(min_value=3, max_value=9),
    shards=st.integers(min_value=1, max_value=4),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_sharded_equals_incremental_property(seed, protocol_key, daemon, n, shards):
    """Sharded equivalence holds for arbitrary seeds, sizes and shard counts."""
    _lockstep(protocol_key, daemon, seed=seed, n=n, max_steps=80, shards=shards)


#: The substrates that register batch kernels (the vectorized fast path);
#: every other substrate rides the fallback, covered by the kernel-less
#: fallback tests in ``tests/runtime/test_vectorized_scheduler.py``.
VECTORIZED_PROTOCOLS = ("bfs-tree", "dijkstra-ring")

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed (the vectorized extra)"
)


@needs_numpy
@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("protocol_key", VECTORIZED_PROTOCOLS)
def test_vectorized_equals_incremental_for_kernel_substrates(protocol_key, daemon):
    """Vectorized lockstep equivalence across every daemon.

    Under the synchronous daemon the batch kernels serve the steps; under
    the other daemons the engine falls back to per-node dispatch -- either
    way the records must be identical to the incremental reference.
    """
    _lockstep(protocol_key, daemon, seed=11, n=7, shards="vectorized")


@needs_numpy
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    protocol_key=st.sampled_from(VECTORIZED_PROTOCOLS),
    daemon=st.sampled_from(DAEMONS),
    n=st.integers(min_value=3, max_value=9),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_vectorized_equals_incremental_property(seed, protocol_key, daemon, n):
    """Vectorized equivalence holds for arbitrary seeds and sizes."""
    _lockstep(protocol_key, daemon, seed=seed, n=n, max_steps=80, shards="vectorized")


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("protocol_key", sorted(PROTOCOLS))
def test_sharded_runs_have_no_frontier_races(protocol_key, shards):
    """The variable-level race sanitizer rides the equivalence matrix.

    Every substrate, k in {1, 2, 4}: after every frontier exchange each
    worker's mirror must agree with the coordinator's journal, and every
    step's writes must come from the owning shard only -- zero findings
    (see ``repro.lint.racecheck``; the must-fail twin lives in
    ``tests/lint/test_racecheck.py``).
    """
    from repro.lint import ShardRaceChecker

    factory, family = PROTOCOLS[protocol_key]
    checker = ShardRaceChecker()
    with ShardedScheduler(
        generators.family(family, 7, seed=11),
        factory(),
        daemon=make_daemon("distributed"),
        seed=11,
        shards=shards,
        mode="inline",
        race_checker=checker,
    ) as scheduler:
        for _ in range(150):
            if scheduler.step() is None:
                break
    assert checker.findings == [], (
        f"races in ({protocol_key}, shards={shards}): "
        + "; ".join(f.message for f in checker.findings)
    )
    assert checker.mirror_audits > 0


@pytest.mark.parametrize("daemon", ("central", "distributed", "synchronous"))
@pytest.mark.parametrize("protocol", ("dftno", "stno-bfs"))
def test_engine_registry_rows_are_identical(protocol, daemon):
    """All four scheduler engines produce identical result rows.

    The whole-run check through the public entry point: same spec (modulo the
    engine name and shard knobs), same :class:`StabilizationSample` row,
    converged on every path.  The sharded rows run with real forked worker
    processes -- the engine's default mode; the synchronous-daemon cells
    drive the vectorized engine's fast path (stno-bfs carries the BFS
    kernels) and the sharded engine's fused round protocol.
    """
    engines = [
        ("scheduler", None),
        ("scheduler-fullscan", None),
        ("scheduler-sharded", 2),
        ("scheduler-sharded", 4),
    ]
    if HAVE_NUMPY:
        engines.append(("scheduler-vectorized", None))
    rows = {}
    for engine, shards in engines:
        spec = RunSpec(
            engine=engine,
            protocol=protocol,
            network=NetworkSpec(family="random_connected", size=9, seed=5),
            daemon=daemon,
            seed=13,
            shards=shards,
        )
        rows[(engine, shards)] = run(spec).row
    reference = rows[("scheduler", None)]
    for key, row in rows.items():
        assert row == reference, key
    assert reference["converged"]


# ---------------------------------------------------------------------------
# Replay fidelity: a recorded run must replay byte-identically
# ---------------------------------------------------------------------------
def _record_and_replay(
    protocol_key: str,
    daemon: str,
    seed: int,
    n: int,
    tmp_path,
    shards: int | None = None,
    max_steps: int = 150,
):
    """Record a run with the flight recorder, replay it, assert fidelity.

    The replay re-executes on the plain incremental scheduler regardless of
    the recording engine (the lockstep grids above hold the engines
    bit-identical), substituting the recorded daemon selections; every
    replayed :class:`StepRecord`, the metrics and the final configuration
    must match the log exactly.
    """
    from repro.obs import FlightRecorder
    from repro.replay import ReplayRun

    factory, family = PROTOCOLS[protocol_key]
    log_path = tmp_path / f"{protocol_key}-{daemon}-{shards}.flight.jsonl"
    recorder = FlightRecorder(log_path)
    network = generators.family(family, n, seed=seed)
    if shards is None:
        scheduler = Scheduler(
            network,
            factory(),
            daemon=make_daemon(daemon),
            seed=seed,
            observers=(recorder,),
        )
    else:
        scheduler = ShardedScheduler(
            network,
            factory(),
            daemon=make_daemon(daemon),
            seed=seed,
            shards=shards,
            mode="inline",
            observers=(recorder,),
        )
    try:
        for _ in range(max_steps):
            if scheduler.step() is None:
                break
    finally:
        closer = getattr(scheduler, "close", None)
        if closer is not None:
            closer()
        recorder.close()
    context = f"({protocol_key}, daemon={daemon}, shards={shards})"
    report = ReplayRun(log_path, protocol=factory()).run()
    assert report.verified, (
        f"replay diverged {context}: "
        + (report.divergence.format() if report.divergence else report.final_detail or "")
    )
    assert report.steps_replayed == scheduler.steps_executed, context
    assert report.final_ok is True, (context, report.final_detail)
    assert report.metrics_ok is True, context
    return report


@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("protocol_key", sorted(PROTOCOLS))
def test_replayed_run_is_byte_identical_for_every_substrate_and_daemon(
    protocol_key, daemon, tmp_path
):
    """Record -> replay fidelity across the whole substrate x daemon grid."""
    _record_and_replay(protocol_key, daemon, seed=11, n=7, tmp_path=tmp_path)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("protocol_key", sorted(PROTOCOLS))
def test_replayed_sharded_run_is_byte_identical(protocol_key, shards, tmp_path):
    """Sharded recordings (k in {1, 2, 4}, exchange entries and all) replay
    byte-identically on the single-process core."""
    _record_and_replay(
        protocol_key, "distributed", seed=11, n=7, tmp_path=tmp_path, shards=shards
    )


@pytest.mark.parametrize("shards", (None,) + SHARD_COUNTS)
@pytest.mark.parametrize("scenario_name", scenario_names())
def test_scenario_executions_are_identical_across_cores(scenario_name, shards):
    """Every library scenario replays identically on every scheduler core.

    Scenario events exercise every mid-run mutation path (corruption bursts
    via ``set_configuration``, crash/rejoin via ``freeze``/``unfreeze`` and
    ``replace_node``, multi-node crashes, link changes via ``set_network``,
    daemon switches), so identical reports here mean the dirty-set -- and,
    sharded, the frontier-routing -- bookkeeping survives all of them.
    ``shards=None`` is the historical full-scan pairing.
    """
    reports = {}
    for key, kwargs in (
        ("reference", {"incremental": True}),
        (
            "candidate",
            {"incremental": False}
            if shards is None
            else {
                "scheduler_factory": partial(
                    ShardedScheduler, shards=shards, mode="inline"
                )
            },
        ),
    ):
        network = generators.random_connected(8, extra_edge_probability=0.3, seed=3)
        reports[key] = ScenarioRunner(
            network,
            build_dftno(),
            build_scenario(scenario_name),
            daemon=make_daemon("distributed"),
            seed=7,
            **kwargs,
        ).run()
    assert reports["reference"].as_row() == reports["candidate"].as_row()
    assert reports["reference"].events == reports["candidate"].events
