"""Equivalence of the incremental and full-scan scheduler cores.

The incremental enabled-set is an optimization, not a semantics change: for
any substrate, daemon, scenario and seed, the ``scheduler`` engine (dirty
frontier re-evaluation) and the ``scheduler-fullscan`` engine (historical
rescan of every guard per step) must produce **identical** executions -- the
same enabled set before every step, the same :class:`StepRecord` stream, the
same metrics, and the same final configuration.

These tests drive every substrate x daemon combination (and every library
scenario, which exercises the mid-run mutation paths: ``set_configuration``,
``freeze``/``unfreeze`` + ``replace_node``, ``set_network``, ``set_daemon``)
through both paths in lockstep, with guard-locality checking switched on so
the invariant the dirty frontier relies on is asserted on every evaluation.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import RunSpec, NetworkSpec, run
from repro.core.dftno import build_dftno
from repro.core.stno import build_stno
from repro.graphs import generators
from repro.runtime.daemon import make_daemon
from repro.runtime.scheduler import Scheduler
from repro.scenarios.library import build_scenario, scenario_names
from repro.scenarios.runner import ScenarioRunner
from repro.substrates.dijkstra_ring import DijkstraTokenRing
from repro.substrates.pif import PIFWave
from repro.substrates.spanning_tree import BFSSpanningTree, DFSSpanningTree
from repro.substrates.token_circulation import DepthFirstTokenCirculation

DAEMONS = ("central", "distributed", "synchronous", "adversarial")

#: Every substrate / protocol stack with a network family it legally runs on.
PROTOCOLS = {
    "bfs-tree": (BFSSpanningTree, "random_connected"),
    "dfs-tree": (DFSSpanningTree, "random_connected"),
    "token-circulation": (DepthFirstTokenCirculation, "random_connected"),
    "pif": (PIFWave, "random_tree"),
    "dijkstra-ring": (DijkstraTokenRing, "ring"),
    "dftno": (build_dftno, "random_connected"),
    "stno-bfs": (lambda: build_stno(tree="bfs"), "random_connected"),
    "stno-dfs": (lambda: build_stno(tree="dfs"), "random_connected"),
}


def _lockstep(protocol_key: str, daemon: str, seed: int, n: int, max_steps: int = 150) -> None:
    """Run both cores in lockstep and assert every observable is identical."""
    factory, family = PROTOCOLS[protocol_key]
    schedulers = []
    for incremental in (True, False):
        schedulers.append(
            Scheduler(
                generators.family(family, n, seed=seed),
                factory(),
                daemon=make_daemon(daemon),
                seed=seed,
                incremental=incremental,
                check_guard_locality=True,
            )
        )
    incremental_scheduler, fullscan_scheduler = schedulers
    context = f"({protocol_key}, daemon={daemon}, seed={seed}, n={n})"
    assert incremental_scheduler.configuration == fullscan_scheduler.configuration

    for _ in range(max_steps):
        assert (
            incremental_scheduler.enabled_nodes() == fullscan_scheduler.enabled_nodes()
        ), f"enabled sets diverged at step {incremental_scheduler.steps_executed} {context}"
        record_incremental = incremental_scheduler.step()
        record_fullscan = fullscan_scheduler.step()
        assert record_incremental == record_fullscan, (
            f"step records diverged at step {fullscan_scheduler.steps_executed} {context}"
        )
        if record_incremental is None:
            break

    assert incremental_scheduler.configuration == fullscan_scheduler.configuration, context
    assert incremental_scheduler.metrics == fullscan_scheduler.metrics, context
    assert incremental_scheduler.rounds_completed == fullscan_scheduler.rounds_completed, context


@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("protocol_key", sorted(PROTOCOLS))
def test_incremental_equals_fullscan_for_every_substrate_and_daemon(protocol_key, daemon):
    """Fixed-seed lockstep equivalence across the whole substrate x daemon grid."""
    _lockstep(protocol_key, daemon, seed=11, n=7)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    protocol_key=st.sampled_from(sorted(PROTOCOLS)),
    daemon=st.sampled_from(DAEMONS),
    n=st.integers(min_value=3, max_value=9),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_incremental_equals_fullscan_property(seed, protocol_key, daemon, n):
    """The lockstep equivalence holds for arbitrary seeds and sizes."""
    _lockstep(protocol_key, daemon, seed=seed, n=n, max_steps=80)


@pytest.mark.parametrize("daemon", ("central", "distributed"))
@pytest.mark.parametrize("protocol", ("dftno", "stno-bfs"))
def test_engine_registry_rows_are_identical(protocol, daemon):
    """``scheduler`` and ``scheduler-fullscan`` produce identical result rows.

    The whole-run check through the public entry point: same spec (modulo the
    engine name), same :class:`StabilizationSample` row, converged on both
    paths.
    """
    rows = {}
    for engine in ("scheduler", "scheduler-fullscan"):
        spec = RunSpec(
            engine=engine,
            protocol=protocol,
            network=NetworkSpec(family="random_connected", size=9, seed=5),
            daemon=daemon,
            seed=13,
        )
        rows[engine] = run(spec).row
    assert rows["scheduler"] == rows["scheduler-fullscan"]
    assert rows["scheduler"]["converged"]


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_scenario_executions_are_identical_across_cores(scenario_name):
    """Every library scenario replays identically on both scheduler cores.

    Scenario events exercise every mid-run mutation path (corruption bursts
    via ``set_configuration``, crash/rejoin via ``freeze``/``unfreeze`` and
    ``replace_node``, link changes via ``set_network``, daemon switches), so
    identical reports here mean the dirty-set bookkeeping survives all of
    them.
    """
    reports = {}
    for incremental in (True, False):
        network = generators.random_connected(8, extra_edge_probability=0.3, seed=3)
        reports[incremental] = ScenarioRunner(
            network,
            build_dftno(),
            build_scenario(scenario_name),
            daemon=make_daemon("distributed"),
            seed=7,
            incremental=incremental,
        ).run()
    assert reports[True].as_row() == reports[False].as_row()
    assert reports[True].events == reports[False].events
