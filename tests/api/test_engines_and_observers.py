"""Every engine behind repro.api.run(), each watched through observers."""

from __future__ import annotations

import json

import pytest

from repro.analysis.convergence import StabilizationSample
from repro.analysis.recovery import EventRecovery, ScenarioReport
from repro.api import (
    CallbackObserver,
    Engine,
    MetricsObserver,
    NetworkSpec,
    RecoveryObserver,
    RunSpec,
    TraceObserver,
    engine_names,
    get_engine,
    register_engine,
    run,
)
from repro.msgpass.simulator import SimulationResult


def test_all_three_engines_are_reachable_through_run():
    assert set(engine_names()) >= {"scheduler", "scenario", "msgpass"}
    specs = {
        "scheduler": RunSpec(network=NetworkSpec(family="ring", size=6, seed=1), seed=2),
        "scenario": RunSpec(
            engine="scenario",
            scenario="single_burst",
            network=NetworkSpec(size=8, seed=2),
            seed=3,
        ),
        "msgpass": RunSpec(engine="msgpass", network=NetworkSpec(family="complete", size=6)),
    }
    for engine, spec in specs.items():
        result = run(spec)
        assert result.engine == engine
        assert result.spec is spec
        assert result.converged
        json.dumps(result.row)  # rows stay JSON-serializable
        payload = result.to_dict()
        assert payload["spec_hash"] == spec.canonical_hash


def test_runs_are_deterministic_in_the_spec():
    spec = RunSpec(network=NetworkSpec(family="random_connected", size=8, seed=3), seed=5)
    assert run(spec).row == run(spec).row


def test_unknown_engine_and_duplicate_registration_are_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        get_engine("quantum")

    class Dummy(Engine):
        name = "scheduler"

        def execute(self, spec, observers=()):  # pragma: no cover - never runs
            raise AssertionError

    with pytest.raises(ValueError, match="already registered"):
        register_engine(Dummy())


# ----------------------------------------------------------------------
# One observer test per engine (plus the built-in metrics/trace observers)
# ----------------------------------------------------------------------
def test_scheduler_engine_notifies_step_round_and_convergence():
    steps, rounds, converged = [], [], []
    watcher = CallbackObserver(
        on_step=lambda source, record: steps.append(record),
        on_round=lambda source, index: rounds.append(index),
        on_converged=lambda source, result: converged.append(result),
    )
    trace = TraceObserver()
    spec = RunSpec(network=NetworkSpec(family="ring", size=6, seed=1), seed=4)
    result = run(spec, observers=[watcher, trace])
    assert result.converged
    assert len(steps) == result.row["total_steps"]
    assert steps[0].moves and steps[0].moves[0].action  # rich move records
    assert rounds and rounds[-1] == result.row["total_rounds"]
    assert len(converged) == 1 and isinstance(converged[0], StabilizationSample)
    assert converged[0].as_row() == result.row
    # The trace observer recorded every move of every step.
    assert len(trace.trace) == sum(len(record.moves) for record in steps)


def test_scheduler_engine_feeds_external_metrics_observer():
    metrics = MetricsObserver()
    spec = RunSpec(network=NetworkSpec(family="ring", size=5, seed=2), seed=1)
    result = run(spec, observers=[metrics])
    assert metrics.metrics.steps == result.row["total_steps"]
    assert metrics.metrics.moves > 0
    assert metrics.metrics.rounds == result.row["total_rounds"]


def test_scenario_engine_notifies_events_and_convergence():
    recovery = RecoveryObserver()
    events_seen = []
    watcher = CallbackObserver(on_event=lambda source, event: events_seen.append(event))
    spec = RunSpec(
        engine="scenario",
        scenario="periodic_burst",
        network=NetworkSpec(size=8, seed=3),
        seed=6,
    )
    result = run(spec, observers=[recovery, watcher])
    assert result.converged
    assert len(recovery.events) == result.row["events"] == len(events_seen)
    assert all(isinstance(event, EventRecovery) for event in recovery.events)
    assert recovery.converged_runs == 1
    aggregated = recovery.aggregate()
    assert aggregated and aggregated[0]["kind"] == "corruption"
    assert isinstance(result.report, ScenarioReport)


def test_msgpass_engine_notifies_rounds_and_quiescence():
    rounds, results = [], []
    watcher = CallbackObserver(
        on_round=lambda source, index: rounds.append(index),
        on_converged=lambda source, result: results.append(result),
    )
    spec = RunSpec(
        engine="msgpass",
        workload="traversal",
        network=NetworkSpec(family="complete", size=6),
    )
    result = run(spec, observers=[watcher])
    assert result.converged
    # Two simulations per msgpass run: unoriented and oriented.
    assert len(results) == 2
    assert all(isinstance(item, SimulationResult) for item in results)
    assert len(rounds) == result.row["rounds_unoriented"] + result.row["rounds_oriented"]
    # on_round carries the completed-round *count* (same semantics as the
    # scheduler engine), so the last notification of each simulation equals
    # its reported total.
    assert rounds[result.row["rounds_unoriented"] - 1] == result.row["rounds_unoriented"]
    assert rounds[-1] == result.row["rounds_oriented"]
    assert result.row["messages_oriented"] == 2 * (result.row["n"] - 1)


def test_msgpass_election_workload_runs_on_rings():
    spec = RunSpec(
        engine="msgpass", workload="election", network=NetworkSpec(family="ring", size=8)
    )
    row = run(spec).row
    assert row["converged"]
    assert row["messages_oriented"] < row["messages_unoriented"]
    assert row["message_savings"] > 1.0
