"""RunSpec: serialization round-trips, canonical hashing, validation."""

from __future__ import annotations

import json

import pytest

from repro.analysis.convergence import height_controlled_tree
from repro.api import NetworkSpec, RunSpec, StopSpec
from repro.graphs import generators


def sample_specs() -> list[RunSpec]:
    return [
        RunSpec(),
        RunSpec(
            engine="scheduler",
            protocol="stno-dfs",
            network=NetworkSpec(family="ring", size=8, seed=4),
            daemon="central",
            seed=11,
            stop=StopSpec(max_steps=5_000, after_substrate=True),
            parameter=8,
        ),
        RunSpec(
            engine="scheduler",
            protocol="stno-bfs",
            network=NetworkSpec(family="height_tree", size=10, height=3, seed=2),
        ),
        RunSpec(
            engine="scenario",
            protocol="dftno",
            scenario="cascade",
            network=NetworkSpec(size=9, seed=1),
            daemon="adversarial",
            seed=3,
        ),
        RunSpec(engine="msgpass", workload="traversal", network=NetworkSpec(family="complete", size=6)),
        RunSpec(engine="msgpass", workload="election", network=NetworkSpec(family="ring", size=6)),
    ]


def test_specs_round_trip_through_plain_dicts():
    for spec in sample_specs():
        payload = spec.to_dict()
        json.dumps(payload)  # JSON-ready
        rebuilt = RunSpec.from_dict(payload)
        assert rebuilt == spec
        assert rebuilt.canonical_hash == spec.canonical_hash


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown RunSpec fields"):
        RunSpec.from_dict({"engine": "scheduler", "warp_factor": 9})


def test_canonical_hash_is_stable_and_discriminating():
    # Golden values: the canonical hash keys persistent stores, so it must
    # never drift between versions.
    assert RunSpec().canonical_hash == "44136fa355b3678a"
    spec = RunSpec(
        engine="scheduler",
        protocol="stno-bfs",
        network=NetworkSpec(family="ring", size=8, seed=4),
        daemon="central",
        seed=11,
    )
    assert spec.canonical_hash == "57a01302bf81a3ea"
    hashes = {s.canonical_hash for s in sample_specs()}
    assert len(hashes) == len(sample_specs())


def test_canonical_form_strips_defaults_for_forward_stability():
    # A default spec canonicalizes to {} -- so a later RunSpec field (with a
    # default) cannot re-hash any stored spec that never set it.
    assert RunSpec().canonical() == {}
    spec = RunSpec(daemon="central")
    assert spec.canonical() == {"daemon": "central"}
    # The implicit msgpass workload ("broadcast") is a default too.
    msg = RunSpec(engine="msgpass", network=NetworkSpec(family="complete", size=6))
    assert "workload" not in msg.canonical()


def test_spec_accepts_nested_dicts_for_network_and_stop():
    spec = RunSpec(
        network={"family": "ring", "size": 6, "seed": 2},  # type: ignore[arg-type]
        stop={"max_steps": 100},  # type: ignore[arg-type]
    )
    assert spec.network == NetworkSpec(family="ring", size=6, seed=2)
    assert spec.stop == StopSpec(max_steps=100)


def test_network_spec_builds_the_described_topology():
    plain = NetworkSpec(family="random_connected", size=9, seed=5).build()
    reference = generators.family("random_connected", 9, seed=5)
    assert plain.n == reference.n
    assert sorted(plain.edges()) == sorted(reference.edges())

    tree_spec = NetworkSpec(family="height_tree", size=10, height=4, seed=7)
    tree = tree_spec.build()
    reference_tree = height_controlled_tree(10, 4, seed=7)
    assert sorted(tree.edges()) == sorted(reference_tree.edges())


def test_validation_rejects_malformed_specs():
    with pytest.raises(ValueError, match="unknown engine"):
        RunSpec(engine="quantum")
    with pytest.raises(ValueError, match="unknown protocol"):
        RunSpec(protocol="psst")
    with pytest.raises(ValueError, match="unknown daemon"):
        RunSpec(daemon="maxwell")
    with pytest.raises(ValueError, match="needs a scenario"):
        RunSpec(engine="scenario")
    with pytest.raises(ValueError, match="only apply to engine='scenario'"):
        RunSpec(scenario="cascade")
    with pytest.raises(ValueError, match="only apply to engine='msgpass'"):
        RunSpec(workload="broadcast")
    with pytest.raises(ValueError, match="unknown workload"):
        RunSpec(engine="msgpass", workload="teleport")
    with pytest.raises(ValueError, match="ring"):
        RunSpec(engine="msgpass", workload="election", network=NetworkSpec(family="star", size=6))
    for engine, extra in (("scenario", {"scenario": "cascade"}), ("msgpass", {})):
        with pytest.raises(ValueError, match="after_substrate"):
            RunSpec(engine=engine, stop=StopSpec(after_substrate=True), **extra)
    with pytest.raises(ValueError, match="needs a height"):
        NetworkSpec(family="height_tree", size=8)
    with pytest.raises(ValueError, match="unknown topology family"):
        NetworkSpec(family="moebius", size=8)
    with pytest.raises(ValueError, match="out of range"):
        NetworkSpec(family="height_tree", size=8, height=9)


def test_protocol_alias_normalizes_into_the_hash():
    assert RunSpec(protocol="stno").canonical_hash == RunSpec(protocol="stno-bfs").canonical_hash
