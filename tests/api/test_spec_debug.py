"""The hash-excluded ``RunSpec.debug`` field and its engine threading."""

from __future__ import annotations

import multiprocessing
from functools import partial

import pytest

from repro.api import RunSpec, run
from repro.api.engines import SchedulerEngine, ShardedSchedulerEngine


def test_debug_is_excluded_from_the_canonical_hash() -> None:
    bare = RunSpec(network={"size": 6, "seed": 2})
    debug = RunSpec(
        network={"size": 6, "seed": 2}, debug={"check_guard_locality": True}
    )
    assert bare.canonical_hash == debug.canonical_hash
    assert "debug" not in debug.canonical()


def test_debug_roundtrips_through_to_dict() -> None:
    spec = RunSpec(debug={"check_guard_locality": True})
    clone = RunSpec.from_dict(spec.to_dict())
    assert clone.debug == {"check_guard_locality": True}
    assert clone == spec


def test_debug_must_be_a_mapping() -> None:
    with pytest.raises(ValueError):
        RunSpec(debug=True)  # type: ignore[arg-type]


def test_scheduler_engine_arms_the_guard_tracker() -> None:
    engine = SchedulerEngine()
    plain = engine._scheduler_kwargs(RunSpec())
    assert plain == {"incremental": True}
    armed = engine._scheduler_kwargs(RunSpec(debug={"check_guard_locality": True}))
    factory = armed["scheduler_factory"]
    assert isinstance(factory, partial)
    assert factory.keywords["check_guard_locality"] is True
    assert factory.keywords["incremental"] is True


def test_sharded_engine_arms_the_guard_tracker() -> None:
    engine = ShardedSchedulerEngine()
    spec = RunSpec(
        engine="scheduler-sharded", shards=3, debug={"check_guard_locality": True}
    )
    factory = engine._scheduler_kwargs(spec)["scheduler_factory"]
    assert factory.keywords["check_guard_locality"] is True
    assert factory.keywords["shards"] == 3


def test_debug_run_produces_the_same_row_as_a_bare_run() -> None:
    bare = run(RunSpec(network={"size": 6, "seed": 2}))
    debug = run(
        RunSpec(network={"size": 6, "seed": 2}, debug={"check_guard_locality": True})
    )
    assert debug.converged
    assert debug.row == bare.row


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
def test_debug_reaches_forked_shard_workers() -> None:
    # The sharded engine defaults to fork mode where available, so a clean
    # converged run here exercises the tracker inside the worker processes.
    result = run(
        RunSpec(
            engine="scheduler-sharded",
            network={"size": 8, "seed": 3},
            debug={"check_guard_locality": True},
        )
    )
    assert result.converged
