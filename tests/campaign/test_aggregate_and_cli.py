"""Aggregation helpers and the ``repro-campaign`` command line."""

from __future__ import annotations

from repro.campaign.aggregate import aggregate_rows, campaign_summary, fit_if_possible
from repro.campaign.cli import main
from repro.campaign.store import ResultStore


def _rows() -> list[dict[str, object]]:
    return [
        {"parameter": 6, "converged": True, "overlay_steps": 10, "overlay_rounds": 4, "full_steps": 12},
        {"parameter": 6, "converged": True, "overlay_steps": 14, "overlay_rounds": 6, "full_steps": 16},
        {"parameter": 8, "converged": True, "overlay_steps": 20, "overlay_rounds": 8, "full_steps": 24},
        {"parameter": 8, "converged": False, "overlay_steps": None, "overlay_rounds": None, "full_steps": None},
    ]


def test_aggregate_rows_means_over_converged_only():
    aggregated = aggregate_rows(_rows(), by="parameter", key_name="n")
    assert [row["n"] for row in aggregated] == [6, 8]
    assert aggregated[0] == {
        "n": 6,
        "trials": 2,
        "converged": 2,
        "overlay_steps_mean": 12.0,
        "overlay_rounds_mean": 5.0,
        "total_steps_mean": 14.0,
    }
    assert aggregated[1]["trials"] == 2
    assert aggregated[1]["converged"] == 1
    assert aggregated[1]["overlay_steps_mean"] == 20.0


def test_campaign_summary_shape_and_fit():
    summary = campaign_summary(_rows(), key_name="n", fit_metric="overlay_steps_mean")
    assert set(summary) == {"rows", "fit", "samples"}
    assert summary["fit"]["slope"] == 4.0
    assert len(summary["samples"]) == 4


def test_fit_if_possible_degenerate_cases():
    assert fit_if_possible([1], [2.0]) is None
    assert fit_if_possible([1, 1], [2.0, 3.0]) is None
    assert fit_if_possible([1, 2], [2.0, None]) is None
    fit = fit_if_possible([1, 2, 3], [2.0, 4.0, 6.0])
    assert fit["slope"] == 2.0


def test_cli_run_resume_and_report(tmp_path, capsys):
    out = str(tmp_path / "results")
    args = ["run", "--protocol", "dftno", "--family", "ring", "--sizes", "5,6",
            "--trials", "1", "--jobs", "2", "--out", out, "--quiet"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "4/4 converged" not in first  # 2 tasks, not 4
    assert "2 executed, 0 skipped" in first

    store = ResultStore(tmp_path / "results" / "campaign.jsonl")
    assert len(store.rows()) == 2

    assert main(args + ["--resume"]) == 0
    assert "0 executed, 2 skipped" in capsys.readouterr().out
    assert len(ResultStore(tmp_path / "results" / "campaign.jsonl").rows()) == 2

    assert main(["status", "--out", out]) == 0
    assert "2 rows" in capsys.readouterr().out

    assert main(["report", "--out", out, "--key", "n"]) == 0
    report = capsys.readouterr().out
    assert "campaign aggregate by n" in report
    assert "slope=" in report


def test_cli_rejects_bad_arguments(tmp_path, capsys):
    assert main(["run", "--protocol", "nope", "--out", str(tmp_path)]) == 2
    assert "unknown protocol" in capsys.readouterr().err
    assert main(["run", "--family", "bogus", "--out", str(tmp_path)]) == 2
    assert "unknown topology family" in capsys.readouterr().err
    assert main(["report", "--out", str(tmp_path / "empty")]) == 1


def test_cli_report_rejects_unknown_key(tmp_path, capsys):
    out = str(tmp_path / "results")
    assert main(["run", "--family", "ring", "--sizes", "5", "--trials", "1",
                 "--out", out, "--quiet"]) == 0
    capsys.readouterr()
    assert main(["report", "--out", out, "--key", "sizes"]) == 2
    err = capsys.readouterr().err
    assert "column 'sizes' missing" in err and "present in every row:" in err
    assert "'sizes'" not in err.split("present in every row:")[1]  # not offered back


def test_cli_read_only_commands_do_not_create_directories(tmp_path, capsys):
    missing = tmp_path / "typo-dir"
    assert main(["status", "--out", str(missing)]) == 0
    capsys.readouterr()
    assert not missing.exists()
