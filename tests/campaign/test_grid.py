"""Grid expansion, config-hash stability and seed derivation."""

from __future__ import annotations

import pytest

from repro.campaign.grid import Grid, TaskSpec, parse_axis


def test_expansion_is_deterministic_and_complete():
    grid = Grid(
        sizes=(6, 8),
        protocols=("dftno", "stno-bfs"),
        families=("ring", "random_connected"),
        daemons=("central", "distributed"),
        trials=3,
        seed=5,
    )
    tasks = grid.expand()
    assert len(tasks) == len(grid) == 2 * 2 * 2 * 2 * 3
    assert tasks == grid.expand()
    assert [task.index for task in tasks] == list(range(len(tasks)))
    assert len({task.config_hash for task in tasks}) == len(tasks)


def test_config_hash_is_stable_across_instances_and_positions():
    spec = TaskSpec(
        protocol="dftno", family="ring", size=8, daemon="central", trial=1, grid_seed=3
    )
    twin = TaskSpec(
        protocol="dftno", family="ring", size=8, daemon="central", trial=1, grid_seed=3, index=42
    )
    assert spec.config_hash == twin.config_hash
    assert spec.task_seed == twin.task_seed
    other = TaskSpec(
        protocol="dftno", family="ring", size=8, daemon="central", trial=2, grid_seed=3
    )
    assert other.config_hash != spec.config_hash


def test_derived_seeds_differ_by_purpose():
    spec = TaskSpec(
        protocol="dftno", family="ring", size=8, daemon="central", trial=0, grid_seed=0
    )
    assert len({spec.task_seed, spec.network_seed, spec.run_seed}) == 3


def test_protocol_alias_and_validation():
    grid = Grid(sizes=(6,), protocols=("stno",))
    assert grid.protocols == ("stno-bfs",)
    with pytest.raises(ValueError):
        Grid(sizes=(6,), protocols=("nope",))
    with pytest.raises(ValueError):
        Grid(sizes=(6,), daemons=("nope",))
    with pytest.raises(ValueError):
        Grid(sizes=(6,), families=("bogus",))
    with pytest.raises(ValueError):
        Grid(sizes=(6,), trials=0)
    with pytest.raises(ValueError):
        Grid(sizes=())


def test_axes_deduplicate_preserving_order():
    grid = Grid(
        sizes=(8, 6, 8),
        protocols=("stno", "stno-bfs", "dftno"),
        daemons=("central", "central"),
        families=("ring", "ring"),
    )
    assert grid.sizes == (8, 6)
    assert grid.protocols == ("stno-bfs", "dftno")
    assert grid.daemons == ("central",)
    assert grid.families == ("ring",)
    tasks = grid.expand()
    assert len({task.config_hash for task in tasks}) == len(tasks)


def test_pair_networks_shares_topology_across_protocols_and_daemons():
    paired = Grid(
        sizes=(10,),
        protocols=("dftno", "stno-bfs"),
        daemons=("central", "distributed"),
        trials=2,
        seed=4,
        pair_networks=True,
    )
    by_trial: dict[int, set[int]] = {}
    for task in paired.expand():
        by_trial.setdefault(task.trial, set()).add(task.network_seed)
    assert all(len(seeds) == 1 for seeds in by_trial.values())
    assert len({min(seeds) for seeds in by_trial.values()}) == 2  # but differs per trial

    unpaired = Grid(
        sizes=(10,), protocols=("dftno", "stno-bfs"), daemons=("central",), seed=4
    )
    assert len({task.network_seed for task in unpaired.expand()}) == 2


def test_heights_axis_switches_to_height_trees_and_validates_range():
    grid = Grid(sizes=(10,), protocols=("stno-bfs",), heights=(2, 5), trials=2)
    tasks = grid.expand()
    assert len(tasks) == 4
    assert all(task.family == "height_tree" for task in tasks)
    assert {task.parameter for task in tasks} == {2, 5}
    with pytest.raises(ValueError):
        Grid(sizes=(5,), heights=(10,))


def test_parse_axis_forms():
    assert parse_axis("8,16,24") == (8, 16, 24)
    assert parse_axis("8:64") == (8, 16, 32, 64)
    assert parse_axis("8:64:8") == (8, 16, 24, 32, 40, 48, 56, 64)
    with pytest.raises(ValueError):
        parse_axis("")
    with pytest.raises(ValueError):
        parse_axis("8:4")
    with pytest.raises(ValueError):
        parse_axis("1:2:3:4")
