"""Store merging across shards and stale-row reporting across grid edits."""

from __future__ import annotations

from repro.campaign.cli import main
from repro.campaign.grid import Grid
from repro.campaign.runner import run_grid
from repro.campaign.store import ResultStore


def _shard_grid(protocol: str) -> Grid:
    return Grid(
        sizes=(5,), protocols=(protocol,), families=("ring",), trials=1, seed=1
    )


def test_merge_unions_two_disjoint_shard_stores(tmp_path, capsys):
    # Two shards of one logical campaign: each machine ran one protocol.
    store_a = ResultStore(tmp_path / "shard-a.jsonl")
    store_b = ResultStore(tmp_path / "shard-b.jsonl")
    result_a = run_grid(_shard_grid("dftno"), store=store_a)
    result_b = run_grid(_shard_grid("stno-bfs"), store=store_b)
    assert result_a.executed == result_b.executed == 1

    target = tmp_path / "merged.jsonl"
    exit_code = main(
        ["merge", str(tmp_path / "shard-a.jsonl"), str(tmp_path / "shard-b.jsonl"), "--out", str(target)]
    )
    assert exit_code == 0
    merged = ResultStore(target)
    assert merged.completed_hashes() == (
        store_a.completed_hashes() | store_b.completed_hashes()
    )

    # Merging again is a no-op: dedup by config hash.
    assert main(["merge", str(tmp_path / "shard-a.jsonl"), "--out", str(target)]) == 0
    out = capsys.readouterr().out
    assert "0 new" in out
    assert len(ResultStore(target)) == 2


def test_merged_store_resumes_the_union_grid(tmp_path):
    store_a = ResultStore(tmp_path / "a.jsonl")
    store_b = ResultStore(tmp_path / "b.jsonl")
    run_grid(_shard_grid("dftno"), store=store_a)
    run_grid(_shard_grid("stno-bfs"), store=store_b)
    merged = ResultStore(tmp_path / "merged.jsonl")
    merged.extend(store_a.rows())
    merged.extend(store_b.rows())

    union = Grid(
        sizes=(5,), protocols=("dftno", "stno-bfs"), families=("ring",), trials=1, seed=1
    )
    result = run_grid(union, store=merged, resume=True)
    assert result.executed == 0
    assert result.skipped == 2
    assert result.stale == 0


def test_merge_rejects_missing_source(tmp_path, capsys):
    assert main(["merge", str(tmp_path / "nope.jsonl"), "--out", str(tmp_path / "out.jsonl")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_resume_counts_stale_rows_after_grid_edit(tmp_path):
    store = ResultStore(tmp_path / "campaign.jsonl")
    run_grid(_shard_grid("dftno"), store=store)

    edited = Grid(sizes=(6,), protocols=("dftno",), families=("ring",), trials=1, seed=1)
    result = run_grid(edited, store=store, resume=True)
    assert result.executed == 1  # the new size runs
    assert result.stale == 1  # the old size's row is reported, not dropped
    assert result.stale_hashes == (_shard_grid("dftno").expand()[0].config_hash,)


def test_status_reports_pending_and_stale_against_a_grid(tmp_path, capsys):
    store_path = tmp_path / "campaign.jsonl"
    run_grid(_shard_grid("dftno"), store=ResultStore(store_path))
    capsys.readouterr()

    # Same grid: everything completed, nothing stale.
    assert (
        main(
            ["status", "--out", str(store_path), "--protocol", "dftno",
             "--family", "ring", "--sizes", "5", "--trials", "1", "--seed", "1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "1 tasks, 1 completed, 0 pending, 0 stale" in out

    # Edited grid (new size): the stored row is stale and listed by hash.
    assert (
        main(
            ["status", "--out", str(store_path), "--protocol", "dftno",
             "--family", "ring", "--sizes", "6", "--trials", "1", "--seed", "1"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "1 tasks, 0 completed, 1 pending, 1 stale" in out
    stale_hash = _shard_grid("dftno").expand()[0].config_hash
    assert stale_hash in out


def test_status_without_grid_options_keeps_the_plain_summary(tmp_path, capsys):
    store_path = tmp_path / "campaign.jsonl"
    run_grid(_shard_grid("dftno"), store=ResultStore(store_path))
    capsys.readouterr()
    assert main(["status", "--out", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "1 rows" in out
    assert "stale" not in out
