"""``repro-campaign run --record`` and ``--trace-export`` end to end."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign.cli import _trace_export_target, main as campaign_main
from repro.campaign.store import ResultStore
from repro.obs.recorder import DEFAULT_LOG_DIR
from repro.replay import ReplayRun


def _run_args(tmp_path, *extra):
    return [
        "run",
        "--protocol", "dftno", "--family", "ring",
        "--sizes", "5", "--trials", "1", "--seed", "11",
        "--out", str(tmp_path / "results"),
        "--quiet",
        *extra,
    ]


def test_campaign_record_writes_a_replayable_log_per_task(tmp_path, capsys):
    logs = tmp_path / "logs"
    code = campaign_main(_run_args(tmp_path, "--record", str(logs)))
    assert code == 0
    paths = sorted(logs.glob("run-*.flight.jsonl"))
    assert len(paths) == 1
    # The stored row points back at its log...
    store = ResultStore(tmp_path / "results" / "campaign.jsonl")
    rows = [row for row in store.rows() if row.get("flight_log")]
    assert rows and Path(rows[0]["flight_log"]) == paths[0]
    # ...and the log replays byte-identically.
    report = ReplayRun(paths[0]).run()
    assert report.verified
    assert report.steps_replayed > 0


def test_campaign_record_defaults_to_the_flightlogs_dir(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = campaign_main(_run_args(tmp_path, "--record"))
    assert code == 0
    logs = sorted((tmp_path / DEFAULT_LOG_DIR).glob("run-*.flight.jsonl"))
    assert len(logs) == 1


def test_campaign_without_record_writes_no_logs(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert campaign_main(_run_args(tmp_path)) == 0
    assert not (tmp_path / DEFAULT_LOG_DIR).exists()
    store = ResultStore(tmp_path / "results" / "campaign.jsonl")
    assert all(not row.get("flight_log") for row in store.rows())


def test_record_log_keyed_by_canonical_hash_survives_resume(tmp_path, capsys):
    logs = tmp_path / "logs"
    assert campaign_main(_run_args(tmp_path, "--record", str(logs))) == 0
    first = sorted(logs.glob("run-*.flight.jsonl"))
    # Resuming a complete campaign re-runs nothing and clobbers no log.
    before = first[0].read_bytes()
    assert campaign_main(_run_args(tmp_path, "--record", str(logs), "--resume")) == 0
    assert sorted(logs.glob("run-*.flight.jsonl")) == first
    assert first[0].read_bytes() == before


def test_trace_export_spec_parsing():
    assert _trace_export_target(None) is None
    assert _trace_export_target("chrome://trace.json") == "trace.json"
    assert _trace_export_target("chrome:///abs/trace.json") == "/abs/trace.json"
    with pytest.raises(ValueError, match="chrome://FILE"):
        _trace_export_target("trace.json")
    with pytest.raises(ValueError, match="chrome://FILE"):
        _trace_export_target("chrome://")


def test_campaign_trace_export_writes_a_chrome_trace(tmp_path, capsys):
    destination = tmp_path / "trace.json"
    code = campaign_main(
        _run_args(tmp_path, "--trace-export", f"chrome://{destination}")
    )
    assert code == 0
    trace = json.loads(destination.read_text(encoding="utf-8"))
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    assert events, "campaign run exported no span events"
    kinds = {event["cat"] for event in events}
    assert "run" in kinds
    # The intermediate span log sits next to the export.
    assert (tmp_path / "trace.json.spans.jsonl").exists()
    assert f"-> {destination}" in capsys.readouterr().out


def test_campaign_trace_export_respects_an_existing_trace_env(
    tmp_path, capsys, monkeypatch
):
    from repro.obs.spans import TRACE_ENV

    spans = tmp_path / "own.spans.jsonl"
    monkeypatch.setenv(TRACE_ENV, str(spans))
    destination = tmp_path / "trace.json"
    code = campaign_main(
        _run_args(tmp_path, "--trace-export", f"chrome://{destination}")
    )
    assert code == 0
    # The user's span log is the source and the variable survives the run.
    assert spans.exists()
    assert json.loads(destination.read_text(encoding="utf-8"))["traceEvents"]
    import os

    assert os.environ[TRACE_ENV] == str(spans)
