"""Campaign execution: determinism, serial/parallel equivalence, resume."""

from __future__ import annotations

from repro.campaign.grid import Grid
from repro.campaign.runner import CampaignRunner, run_grid, run_task
from repro.campaign.store import ResultStore

TINY_GRID = Grid(sizes=(5, 6), protocols=("dftno",), families=("ring",), trials=1, seed=11)


def test_run_task_is_reproducible():
    spec = TINY_GRID.expand()[0]
    first = run_task(spec)
    second = run_task(spec)
    assert first == second
    assert first["converged"]
    assert first["config_hash"] == spec.config_hash
    assert first["protocol"] == "dftno"
    assert first["family"] == "ring"


def test_serial_and_parallel_runs_produce_identical_rows(tmp_path):
    serial = run_grid(TINY_GRID, store=ResultStore(tmp_path / "serial.jsonl"), jobs=1)
    parallel = run_grid(TINY_GRID, store=ResultStore(tmp_path / "parallel.jsonl"), jobs=2)
    assert serial.rows == parallel.rows
    # The stored rows (and their order) are identical for any --jobs value;
    # only the per-row append timestamps differ between the two files.
    assert ResultStore(tmp_path / "serial.jsonl").rows() == ResultStore(
        tmp_path / "parallel.jsonl"
    ).rows()


def test_resume_skips_completed_tasks_without_duplicates(tmp_path):
    path = tmp_path / "campaign.jsonl"
    tasks = TINY_GRID.expand()

    # Simulate a campaign killed after the first task: its row is stored,
    # plus a half-written line from the crash itself.
    store = ResultStore(path)
    store.append(run_task(tasks[0]))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"config_hash": "dead')

    resumed = run_grid(TINY_GRID, store=ResultStore(path), jobs=1, resume=True)
    assert resumed.total == len(tasks)
    assert resumed.skipped == 1
    assert resumed.executed == len(tasks) - 1

    final = ResultStore(path).rows()
    assert len(final) == len(tasks)
    assert len({row["config_hash"] for row in final}) == len(tasks)

    # A second resume is a pure no-op.
    again = run_grid(TINY_GRID, store=ResultStore(path), jobs=1, resume=True)
    assert again.executed == 0
    assert again.skipped == len(tasks)
    assert again.rows == resumed.rows


def test_resumed_rows_match_a_fresh_run(tmp_path):
    fresh = run_grid(TINY_GRID, jobs=1)
    store = ResultStore(tmp_path / "campaign.jsonl")
    for row in fresh.rows[:1]:
        store.append(row)
    resumed = run_grid(TINY_GRID, store=store, jobs=1, resume=True)
    assert resumed.rows == fresh.rows


def test_runner_streams_progress_in_grid_order(tmp_path):
    seen: list[int] = []
    CampaignRunner(jobs=2).run(TINY_GRID, progress=lambda row: seen.append(row["task_index"]))
    assert seen == [0, 1]


def test_stno_and_height_grids_execute():
    grid = Grid(sizes=(8,), protocols=("stno-bfs",), heights=(2, 4), trials=1, seed=3)
    result = run_grid(grid, jobs=1)
    assert result.total == 2
    assert all(row["converged"] for row in result.rows)
    assert [row["parameter"] for row in result.rows] == [2, 4]


def test_live_progress_emits_in_task_lines_without_changing_rows(capsys):
    spec = TINY_GRID.expand()[0]
    plain = run_task(spec)
    capsys.readouterr()
    live = run_task(spec, live_every=1)
    output = capsys.readouterr().out
    assert plain == live  # observers never influence the measurement
    assert f"[task {spec.index}" in output
    assert "progress:" in output
    assert "converged after" in output


def test_live_progress_survives_pool_workers(tmp_path, capsys):
    store = ResultStore(tmp_path / "live.jsonl")
    result = run_grid(TINY_GRID, store=store, jobs=2, live_every=1)
    assert result.executed == 2
    # Worker stdout is not captured by capsys, but the rows must be identical
    # to an uninstrumented run.
    assert store.rows() == [
        {k: v for k, v in run_task(spec).items()} for spec in TINY_GRID.expand()
    ]
