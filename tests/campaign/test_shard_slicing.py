"""Hash-keyed grid slicing: the multi-machine campaign split.

``Grid.shard(i, k)`` must slice deterministically (same task -> same shard on
every machine), disjointly, and completely -- and the per-shard stores must
re-unite through the existing ``merge`` into exactly the store a single
machine would have produced.
"""

from __future__ import annotations

import pytest

from repro.campaign.cli import main as campaign_main
from repro.campaign.grid import Grid, parse_shard
from repro.campaign.runner import run_grid
from repro.campaign.store import open_store

GRID = dict(
    sizes=(5, 6),
    protocols=("dftno", "stno-bfs"),
    families=("ring",),
    daemons=("central", "distributed"),
    trials=2,
    seed=3,
)


@pytest.mark.parametrize("count", (1, 2, 3, 5))
def test_shards_are_disjoint_and_cover_the_grid(count):
    grid = Grid(**GRID)
    slices = [grid.shard(index, count) for index in range(count)]
    union = [task.config_hash for tasks in slices for task in tasks]
    assert sorted(union) == sorted(task.config_hash for task in grid.expand())
    assert len(union) == len(set(union))  # pairwise disjoint


def test_sharding_is_deterministic_and_axis_order_independent() -> None:
    """The slice key is the config hash, so reordering axes cannot move tasks."""
    grid = Grid(**GRID)
    reordered = Grid(**{**GRID, "protocols": ("stno-bfs", "dftno"), "sizes": (6, 5)})
    for index in range(3):
        mine = {task.config_hash for task in grid.shard(index, 3)}
        theirs = {task.config_hash for task in reordered.shard(index, 3)}
        assert mine == theirs


def test_shard_validates_arguments():
    grid = Grid(**GRID)
    with pytest.raises(ValueError):
        grid.shard(0, 0)
    with pytest.raises(ValueError):
        grid.shard(2, 2)
    with pytest.raises(ValueError):
        grid.shard(-1, 2)


def test_parse_shard():
    assert parse_shard("0/4") == (0, 4)
    assert parse_shard(" 3/4 ") == (3, 4)
    for bad in ("", "3", "4/4", "-1/4", "a/b", "1/2/3"):
        with pytest.raises(ValueError):
            parse_shard(bad)


def test_sharded_runs_merge_back_into_the_single_machine_store(tmp_path):
    """Run each slice into its own store; merge equals the one-shot store."""
    grid = Grid(sizes=(5,), protocols=("dftno",), families=("ring",), daemons=("central",), trials=4, seed=7)

    whole = open_store(tmp_path / "whole.jsonl")
    run_grid(grid, store=whole)

    shard_paths = []
    for index in range(2):
        path = tmp_path / f"shard-{index}.jsonl"
        shard_paths.append(path)
        result = run_grid(grid, store=open_store(path), shard=(index, 2))
        assert result.total == len(grid.shard(index, 2))
        assert result.stale_hashes == ()  # the other shard's absence is not staleness

    assert campaign_main(
        ["merge", str(shard_paths[0]), str(shard_paths[1]), "--out", str(tmp_path / "merged.jsonl")]
    ) == 0
    merged = open_store(tmp_path / "merged.jsonl")
    assert merged.rows_by_hash() == whole.rows_by_hash()


def test_cli_run_with_shard_flag(tmp_path, capsys):
    exit_code = campaign_main(
        [
            "run",
            "--protocol",
            "dftno",
            "--family",
            "ring",
            "--sizes",
            "5",
            "--trials",
            "4",
            "--seed",
            "7",
            "--shard",
            "1/2",
            "--quiet",
            "--out",
            str(tmp_path / "cli-shard.jsonl"),
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "shard 1/2 of a 4-task grid" in out
    # The store holds exactly the slice's hashes (CLI default daemon applies).
    cli_grid = Grid(
        sizes=(5,), protocols=("dftno",), families=("ring",), daemons=("distributed",), trials=4, seed=7
    )
    stored = set(open_store(tmp_path / "cli-shard.jsonl").rows_by_hash())
    assert stored == {task.config_hash for task in cli_grid.shard(1, 2)}


def test_cli_rejects_bad_shard_spec(tmp_path, capsys):
    exit_code = campaign_main(
        ["run", "--sizes", "5", "--shard", "9/3", "--out", str(tmp_path / "x.jsonl")]
    )
    assert exit_code == 2
    assert "error:" in capsys.readouterr().err
