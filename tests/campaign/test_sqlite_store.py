"""SQLite store backend, store metadata, and the status progress/ETA view."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign.cli import main
from repro.campaign.store import (
    JsonlResultStore,
    ResultStore,
    SqliteResultStore,
    open_store,
    resolve_store_path,
)


def row(h: str, **extra: object) -> dict[str, object]:
    return {"config_hash": h, "converged": True, **extra}


def test_resolve_store_path_accepts_sqlite_suffixes(tmp_path):
    assert resolve_store_path(tmp_path / "a.jsonl") == tmp_path / "a.jsonl"
    assert resolve_store_path(tmp_path / "a.sqlite") == tmp_path / "a.sqlite"
    assert resolve_store_path(tmp_path / "a.db") == tmp_path / "a.db"
    assert resolve_store_path(tmp_path / "dir") == tmp_path / "dir" / "campaign.jsonl"


def test_open_store_dispatches_on_suffix(tmp_path):
    assert isinstance(open_store(tmp_path / "x.sqlite"), SqliteResultStore)
    assert isinstance(open_store(tmp_path / "x.db"), SqliteResultStore)
    assert isinstance(open_store(tmp_path / "x.jsonl"), JsonlResultStore)
    # Backwards-compatible alias: ResultStore is the JSONL backend.
    assert ResultStore is JsonlResultStore


@pytest.mark.parametrize("suffix", [".jsonl", ".sqlite"])
def test_backends_share_append_dedup_and_order_semantics(tmp_path, suffix):
    store = open_store(tmp_path / f"store{suffix}")
    assert store.append(row("aa", value=1)) is True
    assert store.append(row("aa", value=2)) is False  # dedup: first row wins
    assert store.append(row("bb", value=3)) is True
    assert store.extend([row("bb"), row("cc"), row("cc"), row("dd")]) == 2
    assert len(store) == 4
    assert "aa" in store and "zz" not in store
    assert store.completed_hashes() == {"aa", "bb", "cc", "dd"}

    reopened = open_store(store.path)
    rows = reopened.rows()
    assert [r["config_hash"] for r in rows] == ["aa", "bb", "cc", "dd"]  # append order
    assert rows[0]["value"] == 1
    assert reopened.rows_by_hash()["bb"]["value"] == 3

    with pytest.raises(ValueError, match="config_hash"):
        store.append({"converged": True})


@pytest.mark.parametrize("suffix", [".jsonl", ".sqlite"])
def test_metadata_persists_and_merges(tmp_path, suffix):
    store = open_store(tmp_path / f"store{suffix}")
    assert store.metadata() == {}
    store.update_metadata(created_at=123.0, code_version="1.0.0")
    store.update_metadata(grid={"sizes": [6, 8]}, code_version="1.1.0")
    reopened = open_store(store.path)
    metadata = reopened.metadata()
    assert metadata["created_at"] == 123.0
    assert metadata["code_version"] == "1.1.0"  # later update wins
    assert metadata["grid"] == {"sizes": [6, 8]}
    # Metadata never leaks into result rows.
    store.append(row("aa"))
    assert open_store(store.path).rows() == [row("aa")]


def test_jsonl_metadata_lines_coexist_with_rows_on_disk(tmp_path):
    store = JsonlResultStore(tmp_path / "store.jsonl")
    store.update_metadata(created_at=1.0)
    store.append(row("aa"))
    lines = [json.loads(line) for line in store.path.read_text().splitlines()]
    assert any("__store_meta__" in line for line in lines)
    assert any(line.get("config_hash") == "aa" for line in lines)


def test_read_only_misses_do_not_create_files(tmp_path):
    for suffix in (".jsonl", ".sqlite"):
        store = open_store(tmp_path / f"missing{suffix}")
        assert store.rows() == []
        assert store.metadata() == {}
        assert len(store) == 0
        assert store.time_window() is None
        assert not store.path.exists()


def test_sqlite_time_window_and_throughput(tmp_path):
    store = SqliteResultStore(tmp_path / "store.sqlite")
    for index in range(5):
        store.append(row(f"h{index}"))
    # Pin the per-row timestamps so the rate is exact: 5 rows over 2 seconds.
    connection = store._connect(create=True)
    for index in range(5):
        connection.execute(
            "UPDATE results SET created_at = ? WHERE config_hash = ?",
            (100.0 + index * 0.5, f"h{index}"),
        )
    connection.commit()
    assert store.time_window() == (100.0, 102.0)
    assert store.throughput() == pytest.approx(5 / 2.0)


def test_jsonl_per_row_timestamps_beat_created_at_and_mtime(tmp_path):
    import os
    import time

    store = JsonlResultStore(tmp_path / "store.jsonl")
    store.update_metadata(created_at=50.0)
    store.append(row("aa"))
    store.append(row("bb"))
    os.utime(store.path, (60.0, 60.0))
    # Rows carry exact ISO append timestamps now, so neither the metadata
    # created_at nor the file mtime participates anymore.
    window = store.time_window()
    assert window is not None
    first, last = window
    assert first <= last
    assert abs(last - time.time()) < 60


def test_single_row_store_has_no_throughput(tmp_path):
    store = SqliteResultStore(tmp_path / "store.sqlite")
    store.append(row("aa"))
    assert store.throughput() is None


def test_merge_mixes_backends_both_ways(tmp_path, capsys):
    jsonl = JsonlResultStore(tmp_path / "a.jsonl")
    jsonl.extend([row("aa", value=1), row("bb", value=2)])
    sqlite = SqliteResultStore(tmp_path / "b.sqlite")
    sqlite.extend([row("bb", value=99), row("cc", value=3)])

    assert main(["merge", str(jsonl.path), str(sqlite.path), "--out", str(tmp_path / "m.sqlite")]) == 0
    merged = open_store(tmp_path / "m.sqlite")
    assert merged.completed_hashes() == {"aa", "bb", "cc"}
    assert merged.rows_by_hash()["bb"]["value"] == 2  # earlier source wins

    assert main(["merge", str(sqlite.path), "--out", str(jsonl.path)]) == 0
    assert open_store(jsonl.path).completed_hashes() == {"aa", "bb", "cc"}


def test_campaign_runs_and_resumes_against_sqlite(tmp_path, capsys):
    out = str(tmp_path / "campaign.sqlite")
    args = [
        "run", "--protocol", "dftno", "--family", "ring", "--sizes", "6",
        "--trials", "2", "--seed", "1", "--out", out, "--quiet",
    ]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args + ["--resume"]) == 0
    assert "0 executed, 2 skipped" in capsys.readouterr().out
    store = open_store(Path(out))
    assert len(store) == 2
    metadata = store.metadata()
    assert "created_at" in metadata and "grid" in metadata and "code_version" in metadata
    assert metadata["grid"]["sizes"] == [6]


def test_status_reports_backend_metadata_and_progress(tmp_path, capsys):
    out = str(tmp_path / "campaign.sqlite")
    assert main([
        "run", "--protocol", "dftno", "--family", "ring", "--sizes", "6",
        "--trials", "2", "--seed", "1", "--out", out, "--quiet",
    ]) == 0
    # Pin timestamps so the rate (and therefore the ETA branch) is exercised
    # deterministically even on a machine fast enough to finish in one tick.
    store = SqliteResultStore(Path(out))
    connection = store._connect(create=True)
    connection.execute("UPDATE results SET created_at = 100.0 WHERE rowid = 1")
    connection.execute("UPDATE results SET created_at = 104.0 WHERE rowid = 2")
    connection.commit()
    store.close()
    capsys.readouterr()
    # The same grid with 4 trials: 2 completed, 2 pending -> progress + ETA.
    assert main([
        "status", "--out", out, "--protocol", "dftno", "--family", "ring",
        "--sizes", "6", "--trials", "4", "--seed", "1",
    ]) == 0
    output = capsys.readouterr().out
    assert "(sqlite, 2 rows)" in output
    assert "code version" in output
    assert "2 completed, 2 pending" in output
    assert "progress: 2/4 (50%), 0.50 rows/s, ETA 4s" in output
