"""Result-store persistence: dedup, crash-tolerance, resume bookkeeping."""

from __future__ import annotations

import json

import pytest

from repro.campaign.store import ResultStore, resolve_store_path


def _row(config_hash: str, **extra: object) -> dict[str, object]:
    return {"config_hash": config_hash, "converged": True, **extra}


def test_append_and_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "campaign.jsonl")
    assert store.append(_row("aaaa", n=6))
    assert store.append(_row("bbbb", n=8))
    assert len(store) == 2
    assert store.completed_hashes() == {"aaaa", "bbbb"}
    reloaded = ResultStore(tmp_path / "campaign.jsonl")
    assert [row["config_hash"] for row in reloaded.rows()] == ["aaaa", "bbbb"]
    assert reloaded.rows_by_hash()["bbbb"]["n"] == 8


def test_duplicate_hash_is_a_noop(tmp_path):
    store = ResultStore(tmp_path / "campaign.jsonl")
    assert store.append(_row("aaaa", n=6))
    assert not store.append(_row("aaaa", n=999))
    assert len(store.rows()) == 1
    assert store.rows()[0]["n"] == 6


def test_rows_skip_truncated_final_line(tmp_path):
    path = tmp_path / "campaign.jsonl"
    store = ResultStore(path)
    store.append(_row("aaaa", n=6))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"config_hash": "bbbb", "n": 8')  # crash mid-write
    reloaded = ResultStore(path)
    assert reloaded.completed_hashes() == {"aaaa"}
    assert len(reloaded.rows()) == 1


def test_duplicate_lines_collapse_on_read(tmp_path):
    path = tmp_path / "campaign.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(_row("aaaa", n=1)) + "\n")
        handle.write(json.dumps(_row("aaaa", n=2)) + "\n")
    assert len(ResultStore(path).rows()) == 1


def test_append_requires_config_hash(tmp_path):
    store = ResultStore(tmp_path / "campaign.jsonl")
    with pytest.raises(ValueError):
        store.append({"n": 6})


def test_resolve_store_path(tmp_path):
    assert resolve_store_path(tmp_path / "x.jsonl") == tmp_path / "x.jsonl"
    assert resolve_store_path(tmp_path / "results") == tmp_path / "results" / "campaign.jsonl"


def test_jsonl_rows_carry_iso_timestamps_on_disk_but_not_in_reads(tmp_path):
    from datetime import datetime

    from repro.campaign.store import ROW_TS_KEY

    store = ResultStore(tmp_path / "campaign.jsonl")
    store.append(_row("aaaa", n=6))
    store.extend([_row("bbbb", n=8), _row("cccc", n=10)])
    on_disk = [json.loads(line) for line in store.path.read_text().splitlines()]
    stamps = [line[ROW_TS_KEY] for line in on_disk]
    assert len(stamps) == 3
    for stamp in stamps:
        datetime.fromisoformat(stamp)  # parseable ISO timestamps
    # extend() stamps its whole batch with one timestamp, like sqlite.
    assert stamps[1] == stamps[2]
    # Reads strip the reserved key: a row comes back exactly as appended.
    assert store.rows() == [_row("aaaa", n=6), _row("bbbb", n=8), _row("cccc", n=10)]


def test_jsonl_time_window_uses_per_row_timestamps(tmp_path):
    store = ResultStore(tmp_path / "campaign.jsonl")
    assert store.time_window() is None
    store.append(_row("aaaa"))
    store.append(_row("bbbb"))
    window = store.time_window()
    assert window is not None
    first, last = window
    assert first <= last
    import time

    assert abs(last - time.time()) < 60


def test_jsonl_time_window_falls_back_for_legacy_stores(tmp_path):
    # A pre-timestamp store: rows without __row_ts__, metadata created_at only.
    path = tmp_path / "legacy.jsonl"
    path.write_text(
        '{"__store_meta__": {"created_at": 100.0}}\n'
        '{"config_hash": "aaaa", "converged": true}\n'
    )
    store = ResultStore(path)
    window = store.time_window()
    assert window is not None
    assert window[0] == 100.0


def test_throughput_on_resumed_legacy_store_counts_only_stamped_rows(tmp_path, monkeypatch):
    # A pre-timestamp store resumed with current code: the rate must reflect
    # the stamped rows only, not divide the full row count by their window.
    path = tmp_path / "legacy.jsonl"
    lines = ['{"__store_meta__": {"created_at": 100.0}}']
    lines += ['{"config_hash": "h%d", "converged": true}' % i for i in range(10)]
    path.write_text("\n".join(lines) + "\n")
    store = ResultStore(path)

    import repro.campaign.store as store_module

    moments = iter((1_000.0, 1_002.0))
    monkeypatch.setattr(store_module.time, "time", lambda: next(moments))
    store.append(_row("new1"))
    store.append(_row("new2"))
    assert len(store) == 12
    assert store.time_window() == (1_000.0, 1_002.0)
    assert store.throughput() == pytest.approx(2 / 2.0)  # not 12 / 2.0

    # A reload parses the stamps back from disk (they carry a UTC offset).
    reloaded = ResultStore(path)
    assert reloaded.time_window() == pytest.approx((1_000.0, 1_002.0))
    assert reloaded.throughput() == pytest.approx(1.0)
