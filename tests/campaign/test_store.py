"""Result-store persistence: dedup, crash-tolerance, resume bookkeeping."""

from __future__ import annotations

import json

import pytest

from repro.campaign.store import ResultStore, resolve_store_path


def _row(config_hash: str, **extra: object) -> dict[str, object]:
    return {"config_hash": config_hash, "converged": True, **extra}


def test_append_and_roundtrip(tmp_path):
    store = ResultStore(tmp_path / "campaign.jsonl")
    assert store.append(_row("aaaa", n=6))
    assert store.append(_row("bbbb", n=8))
    assert len(store) == 2
    assert store.completed_hashes() == {"aaaa", "bbbb"}
    reloaded = ResultStore(tmp_path / "campaign.jsonl")
    assert [row["config_hash"] for row in reloaded.rows()] == ["aaaa", "bbbb"]
    assert reloaded.rows_by_hash()["bbbb"]["n"] == 8


def test_duplicate_hash_is_a_noop(tmp_path):
    store = ResultStore(tmp_path / "campaign.jsonl")
    assert store.append(_row("aaaa", n=6))
    assert not store.append(_row("aaaa", n=999))
    assert len(store.rows()) == 1
    assert store.rows()[0]["n"] == 6


def test_rows_skip_truncated_final_line(tmp_path):
    path = tmp_path / "campaign.jsonl"
    store = ResultStore(path)
    store.append(_row("aaaa", n=6))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"config_hash": "bbbb", "n": 8')  # crash mid-write
    reloaded = ResultStore(path)
    assert reloaded.completed_hashes() == {"aaaa"}
    assert len(reloaded.rows()) == 1


def test_duplicate_lines_collapse_on_read(tmp_path):
    path = tmp_path / "campaign.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(_row("aaaa", n=1)) + "\n")
        handle.write(json.dumps(_row("aaaa", n=2)) + "\n")
    assert len(ResultStore(path).rows()) == 1


def test_append_requires_config_hash(tmp_path):
    store = ResultStore(tmp_path / "campaign.jsonl")
    with pytest.raises(ValueError):
        store.append({"n": 6})


def test_resolve_store_path(tmp_path):
    assert resolve_store_path(tmp_path / "x.jsonl") == tmp_path / "x.jsonl"
    assert resolve_store_path(tmp_path / "results") == tmp_path / "results" / "campaign.jsonl"
