"""Task-type registry: dispatch, new axes, and hash backward compatibility."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.campaign.grid import Grid, TaskSpec
from repro.campaign.registry import (
    DEFAULT_TASK_TYPE,
    get_task_handler,
    normalize_task_type,
    register_task_type,
    task_type_names,
)
from repro.campaign.runner import run_task


def test_builtin_task_types_are_registered():
    names = task_type_names()
    for expected in ("stabilize", "scenario", "msgpass"):
        assert expected in names
    assert DEFAULT_TASK_TYPE == "stabilize"


def test_unknown_task_type_is_rejected_with_choices():
    with pytest.raises(ValueError, match="stabilize"):
        normalize_task_type("quantum")
    with pytest.raises(ValueError):
        Grid(sizes=(6,), task_type="quantum")


def test_custom_task_types_plug_into_run_task():
    @register_task_type("test_echo")
    def run_echo(spec):
        return {"echo": spec.size, "converged": True}

    spec = TaskSpec(
        protocol="dftno",
        family="ring",
        size=6,
        daemon="central",
        trial=0,
        grid_seed=0,
        task_type="test_echo",
    )
    row = run_task(spec)
    assert row["echo"] == 6
    assert row["task_type"] == "test_echo"
    assert row["config_hash"] == spec.config_hash
    # Re-registering a different handler under the same name is an error.
    with pytest.raises(ValueError):
        register_task_type("test_echo")(lambda spec: {})


def test_default_task_type_hashes_are_byte_identical_to_pre_registry():
    # Golden values captured from the campaign engine before the task-type
    # registry existed; default-type grids must never re-hash (stores would
    # silently re-run on resume).
    spec = TaskSpec(
        protocol="dftno", family="ring", size=8, daemon="central", trial=1, grid_seed=3
    )
    assert spec.config_hash == "d0e967fcae134ce0"
    grid = Grid(
        sizes=(6, 8),
        protocols=("dftno", "stno-bfs"),
        daemons=("central", "distributed"),
        trials=2,
        seed=7,
    )
    digest = hashlib.sha256(
        ",".join(task.config_hash for task in grid.expand()).encode()
    ).hexdigest()
    assert digest == "2174652d739d6568377cc39b9072a27aceeae887c30e411fc3ad92712b528c36"


def test_default_task_type_rows_carry_no_new_columns():
    grid = Grid(sizes=(6,), protocols=("dftno",), families=("ring",), trials=1, seed=1)
    row = run_task(grid.expand()[0])
    assert "task_type" not in row
    assert "scenario" not in row
    json.dumps(row)  # rows stay JSON-serializable


def test_scenario_identity_extends_the_hash():
    base = dict(
        protocol="dftno", family="ring", size=8, daemon="central", trial=0, grid_seed=0
    )
    plain = TaskSpec(**base)
    cascade = TaskSpec(**base, task_type="scenario", scenario="cascade")
    churn = TaskSpec(**base, task_type="scenario", scenario="churn")
    assert plain.config_hash != cascade.config_hash
    assert cascade.config_hash != churn.config_hash
    assert cascade.identity()["task_type"] == "scenario"
    assert cascade.identity()["scenario"] == "cascade"
    assert "task_type" not in plain.identity()


def test_scenario_grid_expands_the_scenario_axis():
    grid = Grid(
        sizes=(8,),
        protocols=("dftno", "stno-bfs"),
        daemons=("central", "distributed"),
        trials=1,
        seed=3,
        task_type="scenario",
        scenarios=("cascade", "single_burst", "cascade"),  # dedup preserves order
    )
    assert grid.scenarios == ("cascade", "single_burst")
    tasks = grid.expand()
    assert len(tasks) == len(grid) == 2 * 2 * 2
    assert {task.scenario for task in tasks} == {"cascade", "single_burst"}
    assert len({task.config_hash for task in tasks}) == len(tasks)


def test_scenario_grid_validates_scenario_names_and_presence():
    with pytest.raises(ValueError):
        Grid(sizes=(8,), task_type="scenario")
    with pytest.raises(ValueError):
        Grid(sizes=(8,), task_type="scenario", scenarios=("meteor",))
    with pytest.raises(ValueError):
        Grid(sizes=(8,), scenarios=("cascade",))  # scenarios without the type


def test_run_task_scenario_row_reports_recovery_metrics():
    grid = Grid(
        sizes=(8,),
        protocols=("dftno",),
        families=("random_connected",),
        daemons=("distributed",),
        trials=1,
        seed=2,
        task_type="scenario",
        scenarios=("single_burst",),
    )
    row = run_task(grid.expand()[0])
    assert row["task_type"] == "scenario"
    assert row["scenario"] == "single_burst"
    assert row["events_applied"] == 1
    assert row["converged"] is True
    assert row["recovery_steps"] is not None
    assert row["config_hash"] == grid.expand()[0].config_hash


def test_run_task_msgpass_row_reports_message_savings():
    grid = Grid(
        sizes=(8,),
        protocols=("dftno",),
        families=("complete",),
        daemons=("distributed",),
        trials=1,
        seed=2,
        task_type="msgpass",
    )
    row = run_task(grid.expand()[0])
    assert row["task_type"] == "msgpass"
    assert row["converged"] is True
    assert row["messages_oriented"] < row["messages_unoriented"]
    assert row["message_savings"] > 1.0


def test_scenario_and_msgpass_reject_after_substrate():
    # after_substrate is hashed into the identity; ignoring it would store
    # mislabeled duplicate measurements, so the handlers reject it outright.
    for task_type, extra in (("scenario", {"scenario": "cascade"}), ("msgpass", {})):
        spec = TaskSpec(
            protocol="dftno",
            family="ring",
            size=6,
            daemon="central",
            trial=0,
            grid_seed=0,
            after_substrate=True,
            task_type=task_type,
            **extra,
        )
        with pytest.raises(ValueError, match="after_substrate"):
            run_task(spec)


def test_get_task_handler_returns_the_registered_callable():
    handler = get_task_handler("stabilize")
    assert callable(handler)


def test_msgpass_workload_axis_expands_and_hashes():
    grid = Grid(
        sizes=(6,),
        families=("ring",),
        trials=1,
        seed=4,
        task_type="msgpass",
        workloads=("broadcast", "traversal", "election"),
    )
    tasks = grid.expand()
    assert len(tasks) == len(grid) == 3
    # "broadcast" is the default workload: it hashes exactly like a
    # pre-workload-axis msgpass task, so old stores keep resuming.
    legacy = Grid(sizes=(6,), families=("ring",), trials=1, seed=4, task_type="msgpass")
    assert tasks[0].workload is None
    assert tasks[0].config_hash == legacy.expand()[0].config_hash
    assert "workload" not in tasks[0].identity()
    assert tasks[1].identity()["workload"] == "traversal"
    assert len({task.config_hash for task in tasks}) == 3


def test_msgpass_workload_rows_report_savings_per_workload():
    grid = Grid(
        sizes=(8,),
        families=("ring",),
        trials=1,
        seed=2,
        task_type="msgpass",
        workloads=("traversal", "election"),
    )
    rows = [run_task(task) for task in grid.expand()]
    by_workload = {row["workload"]: row for row in rows}
    assert set(by_workload) == {"traversal", "election"}
    assert by_workload["traversal"]["messages_oriented"] == 2 * (
        by_workload["traversal"]["n"] - 1
    )
    assert by_workload["election"]["message_savings"] > 1.0
    assert all(row["converged"] for row in rows)


def test_workload_axis_is_validated():
    with pytest.raises(ValueError, match="only apply to task_type='msgpass'"):
        Grid(sizes=(6,), workloads=("broadcast",))
    with pytest.raises(ValueError, match="unknown workloads"):
        Grid(sizes=(6,), task_type="msgpass", workloads=("teleport",))
    with pytest.raises(ValueError, match="ring"):
        Grid(sizes=(6,), task_type="msgpass", workloads=("election",))


def test_scenario_rows_persist_per_event_records_and_round_trip():
    from repro.analysis.recovery import (
        EventRecovery,
        ScenarioReport,
        aggregate_event_recoveries,
    )

    grid = Grid(
        sizes=(8,),
        protocols=("dftno",),
        trials=1,
        seed=6,
        task_type="scenario",
        scenarios=("periodic_burst",),
    )
    row = run_task(grid.expand()[0])
    records = row["event_records"]
    assert isinstance(records, list) and len(records) == row["events"]
    json.dumps(row)  # the records are store-serializable

    # Row -> report -> events round-trips exactly.
    report = ScenarioReport.from_row(row)
    assert len(report.events) == row["events"]
    assert report.events[0] == EventRecovery.from_row(records[0])
    assert report.converged == row["converged"]
    aggregated = aggregate_event_recoveries([report])
    assert aggregated[0]["kind"] == "corruption"
    assert aggregated[0]["events"] == row["events_applied"]


def test_report_per_event_aggregates_stored_scenario_rows(tmp_path, capsys):
    from repro.campaign.cli import main
    from repro.campaign.store import JsonlResultStore

    grid = Grid(
        sizes=(8,),
        protocols=("dftno",),
        trials=1,
        seed=6,
        task_type="scenario",
        scenarios=("churn",),
    )
    store = JsonlResultStore(tmp_path / "scen.jsonl")
    for task in grid.expand():
        store.append(run_task(task))
    # A stabilize row without event records is counted and skipped.
    store.append({"config_hash": "deadbeef", "converged": True})
    capsys.readouterr()
    assert main(["report", "--out", str(store.path), "--per-event"]) == 0
    out = capsys.readouterr().out
    assert "per-event recovery across 1 scenario runs" in out
    assert "crash" in out and "link_change" in out
    assert "1 row(s) without per-event records were skipped" in out


def test_report_per_event_fails_cleanly_without_records(tmp_path, capsys):
    from repro.campaign.cli import main
    from repro.campaign.store import JsonlResultStore

    store = JsonlResultStore(tmp_path / "plain.jsonl")
    store.append({"config_hash": "aa", "converged": True})
    capsys.readouterr()
    assert main(["report", "--out", str(store.path), "--per-event"]) == 1
    assert "no stored rows carry per-event records" in capsys.readouterr().out


def test_cascade_campaign_resumes_after_simulated_crash_and_reports(tmp_path, capsys):
    # The acceptance path: cascade from the library over 2 protocols x 2
    # daemons, crash mid-campaign, resume, and aggregate recovery times.
    from repro.campaign.cli import main
    from repro.campaign.runner import run_grid
    from repro.campaign.store import ResultStore

    grid = Grid(
        sizes=(8,),
        protocols=("dftno", "stno-bfs"),
        daemons=("central", "distributed"),
        trials=1,
        seed=11,
        task_type="scenario",
        scenarios=("cascade",),
        pair_networks=True,
    )
    assert len(grid) == 4
    store_path = tmp_path / "cascade.jsonl"

    # "Crash" after two tasks: only their rows made it to the store.
    crashed = ResultStore(store_path)
    for spec in grid.expand()[:2]:
        crashed.append(run_task(spec))

    resumed = run_grid(grid, store=ResultStore(store_path), resume=True)
    assert resumed.skipped == 2
    assert resumed.executed == 2
    assert len(resumed.rows) == 4
    assert {row["daemon"] for row in resumed.rows} == {"central", "distributed"}
    assert {row["protocol"] for row in resumed.rows} == {"dftno", "stno-bfs"}

    capsys.readouterr()
    assert main(["report", "--out", str(store_path), "--key", "daemon"]) == 0
    out = capsys.readouterr().out
    assert "recovery_steps_mean" in out
    assert "recovery_rounds_mean" in out
