"""Live dashboard: frame rendering, concurrent-writer tailing, CLI loop."""

from __future__ import annotations

import threading

import pytest

from repro.campaign import ResultStore, SqliteResultStore
from repro.campaign.cli import _parse_status_shard, _shard_status_table
from repro.campaign.cli import main as campaign_main
from repro.campaign.grid import Grid
from repro.campaign.runner import run_grid, run_task
from repro.campaign.watch import (
    CLEAR_SCREEN,
    _format_duration,
    render_dashboard,
    watch,
)

TINY_GRID = Grid(sizes=(5, 6), protocols=("dftno",), families=("ring",), trials=1, seed=11)


def test_render_dashboard_empty_store(tmp_path):
    store = ResultStore(tmp_path / "empty.jsonl")
    frame = render_dashboard(store)
    assert "campaign watch --" in frame
    assert "0 rows" in frame


def test_render_dashboard_progress_and_tables(tmp_path):
    store = ResultStore(tmp_path / "rows.jsonl")
    run_grid(TINY_GRID, store=store, perf=True, health=True)
    frame = render_dashboard(ResultStore(store.path), grid=TINY_GRID)
    assert "2 rows" in frame
    assert "progress: 2/2 tasks (100%)" in frame
    assert "dftno" in frame and "ring" in frame
    # perf rows feed the rolling phase view; healthy health rows say so.
    assert "rolling phase breakdown" in frame
    assert "guard_eval" in frame
    assert "anomalies: none (all monitored rows healthy)" in frame


def test_render_dashboard_anomaly_feed(tmp_path):
    store = ResultStore(tmp_path / "sick.jsonl")
    store.append(
        {
            "config_hash": "abc",
            "task_index": 3,
            "protocol": "dftno",
            "size": 9,
            "health": {
                "anomalies": [{"kind": "stall", "step": 41, "detail": "revisited"}]
            },
        }
    )
    frame = render_dashboard(ResultStore(store.path))
    assert "anomalies (last 1):" in frame
    assert "task 3 (dftno n=9): stall at step 41 -- revisited" in frame


def test_render_dashboard_against_concurrent_writer(tmp_path):
    """Acceptance criterion: watch renders live progress while a campaign
    writes to the same store.  A writer thread appends real task rows; every
    frame rendered mid-write must parse and show a monotonically growing row
    count, ending at the full grid."""
    grid = Grid(sizes=(5, 6), protocols=("dftno",), families=("ring", "star"),
                trials=1, seed=7)
    specs = grid.expand()
    rows = [run_task(spec, health=True) for spec in specs]

    store_path = tmp_path / "live.jsonl"
    started = threading.Event()

    def writer() -> None:
        store = ResultStore(store_path)
        for row in rows:
            store.append(row)
            started.set()
    thread = threading.Thread(target=writer)
    thread.start()
    started.wait(timeout=10)

    counts = []
    try:
        for _ in range(50):
            frame = render_dashboard(ResultStore(store_path), grid=grid)
            assert "campaign watch --" in frame
            count = int(frame.split("(jsonl, ")[1].split(" rows")[0])
            counts.append(count)
            if count == len(specs):
                break
    finally:
        thread.join(timeout=10)
    final = render_dashboard(ResultStore(store_path), grid=grid)
    assert f"progress: {len(specs)}/{len(specs)} tasks (100%)" in final
    assert counts == sorted(counts), "row count must only grow while tailing"


def test_watch_iterations_mode_and_waiting_frame(tmp_path):
    frames: list[str] = []
    sleeps: list[float] = []
    missing = tmp_path / "not-yet.jsonl"
    assert (
        watch(
            missing,
            interval=0.5,
            iterations=2,
            emit=frames.append,
            clear=False,
            _sleep=sleeps.append,
        )
        == 0
    )
    assert len(frames) == 2
    assert all("waiting for store" in frame for frame in frames)
    assert sleeps == [0.5], "no sleep after the final frame"

    ResultStore(missing).append({"config_hash": "abc", "converged": True})
    frames.clear()
    watch(missing, iterations=1, emit=frames.append, clear=False, _sleep=sleeps.append)
    assert "1 rows" in frames[0]
    assert CLEAR_SCREEN not in frames[0]


def test_watch_clear_mode_prefixes_frames(tmp_path):
    frames: list[str] = []
    watch(
        tmp_path / "gone.jsonl",
        iterations=1,
        emit=frames.append,
        clear=True,
        _sleep=lambda _: None,
    )
    assert frames[0].startswith(CLEAR_SCREEN)


def test_watch_tolerates_sqlite_backend(tmp_path):
    store = SqliteResultStore(tmp_path / "rows.sqlite")
    run_grid(TINY_GRID, store=store)
    frames: list[str] = []
    watch(store.path, grid=TINY_GRID, iterations=1, emit=frames.append, clear=False)
    assert "sqlite, 2 rows" in frames[0]
    assert "progress: 2/2 tasks (100%)" in frames[0]


def test_cli_watch_renders_frames(tmp_path, capsys):
    store = ResultStore(tmp_path / "cli.jsonl")
    run_grid(TINY_GRID, store=store)
    code = campaign_main(
        [
            "watch",
            "--out", str(store.path),
            "--protocol", "dftno", "--family", "ring",
            "--sizes", "5,6", "--trials", "1", "--seed", "11",
            "--interval", "0.01", "--iterations", "2", "--no-clear",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("campaign watch --") == 2
    assert "progress: 2/2 tasks (100%)" in out


def test_format_duration_buckets():
    assert _format_duration(12) == "12s"
    assert _format_duration(123) == "2m 03s"
    assert _format_duration(3840) == "1h 04m"


# ----------------------------------------------------------------------
# status --shard helpers
# ----------------------------------------------------------------------
def test_parse_status_shard_forms():
    assert _parse_status_shard("1/4") == (1, 4)
    assert _parse_status_shard("/4") == (None, 4)
    assert _parse_status_shard("all/3") == (None, 3)
    assert _parse_status_shard("*/2") == (None, 2)
    with pytest.raises(ValueError):
        _parse_status_shard("/0")
    with pytest.raises(ValueError):
        _parse_status_shard("x/2")


def test_shard_status_table_covers_grid_and_charges_stale():
    hashes = [task.config_hash for task in TINY_GRID.expand()]
    stored = {hashes[0], "f" * 40}  # one real row plus an orphan
    table = _shard_status_table(TINY_GRID, stored, None, 2)
    assert [row["shard"] for row in table] == ["0/2", "1/2"]
    assert sum(row["tasks"] for row in table) == len(hashes)
    assert sum(row["completed"] for row in table) == 1
    assert sum(row["pending"] for row in table) == len(hashes) - 1
    # The orphan hash is stale exactly once, on the slice it keys to.
    assert sum(row["stale"] for row in table) == 1
    orphan_slice = int("f" * 40, 16) % 2
    assert table[orphan_slice]["stale"] == 1

    single = _shard_status_table(TINY_GRID, stored, 1, 2)
    assert len(single) == 1 and single[0]["shard"] == "1/2"


def test_cli_watch_once_renders_a_single_snapshot(tmp_path, capsys):
    store = ResultStore(tmp_path / "once.jsonl")
    run_grid(TINY_GRID, store=store)
    code = campaign_main(
        [
            "watch",
            "--out", str(store.path),
            "--protocol", "dftno", "--family", "ring",
            "--sizes", "5,6", "--trials", "1", "--seed", "11",
            "--once",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    # Exactly one frame, never cleared: --once is for pipes and CI logs.
    assert out.count("campaign watch --") == 1
    assert CLEAR_SCREEN not in out
    assert "progress: 2/2 tasks (100%)" in out


def test_cli_watch_once_overrides_iterations(tmp_path, capsys):
    store = ResultStore(tmp_path / "once2.jsonl")
    run_grid(TINY_GRID, store=store)
    code = campaign_main(
        [
            "watch",
            "--out", str(store.path),
            "--protocol", "dftno", "--family", "ring",
            "--sizes", "5,6", "--trials", "1", "--seed", "11",
            "--once", "--iterations", "5", "--interval", "0.01",
        ]
    )
    assert code == 0
    assert capsys.readouterr().out.count("campaign watch --") == 1
