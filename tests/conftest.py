"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import generators
from repro.graphs.network import RootedNetwork


@pytest.fixture
def small_ring() -> RootedNetwork:
    """A 6-processor ring."""
    return generators.ring(6)


@pytest.fixture
def small_tree() -> RootedNetwork:
    """A 7-processor complete binary tree."""
    return generators.kary_tree(7, 2)


@pytest.fixture
def small_random() -> RootedNetwork:
    """A small random connected network with a few extra links."""
    return generators.random_connected(9, extra_edge_probability=0.3, seed=17)


@pytest.fixture
def figure_network() -> RootedNetwork:
    """The 5-processor network of Figure 3.1.1."""
    return generators.figure_3_1_1_network()


@pytest.fixture
def figure_tree() -> RootedNetwork:
    """The 5-processor tree of Figure 4.1.1."""
    return generators.figure_4_1_1_network()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for tests."""
    return random.Random(12345)


def topologies_for_sweeps() -> list[RootedNetwork]:
    """A compact but varied set of topologies used by several test modules."""
    return [
        generators.path(5),
        generators.ring(6),
        generators.star(7),
        generators.kary_tree(7, 2),
        generators.complete(5),
        generators.grid(3, 3),
        generators.random_connected(10, seed=3),
        generators.random_connected(12, extra_edge_probability=0.4, seed=8),
    ]
