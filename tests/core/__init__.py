"""Test package."""
