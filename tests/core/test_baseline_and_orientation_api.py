"""Tests for the centralized baseline and the high-level orientation API."""

from __future__ import annotations

import pytest

from repro.core.baseline import centralized_orientation
from repro.core.orientation import (
    OrientationResult,
    extract_orientation,
    orient_with_dftno,
    orient_with_stno,
)
from repro.errors import ConvergenceError, SpecificationError
from repro.graphs import generators
from repro.runtime.daemon import CentralDaemon, SynchronousDaemon
from repro.substrates.spanning_tree import BFSSpanningTree
from repro.substrates.token_circulation import dfs_preorder


# ----------------------------------------------------------------------
# Centralized baseline
# ----------------------------------------------------------------------
def test_centralized_dfs_orientation_matches_preorder(small_random):
    orientation = centralized_orientation(small_random, order="dfs")
    expected = {node: index for index, node in enumerate(dfs_preorder(small_random))}
    assert orientation.names == expected
    assert orientation.is_valid(small_random)


def test_centralized_bfs_orientation_is_valid(small_random):
    orientation = centralized_orientation(small_random, order="bfs")
    assert orientation.is_valid(small_random)
    assert orientation.names[small_random.root] == 0


def test_centralized_orientation_rejects_unknown_order(small_ring):
    with pytest.raises(SpecificationError):
        centralized_orientation(small_ring, order="random")


def test_centralized_orientation_with_custom_modulus(small_ring):
    orientation = centralized_orientation(small_ring, modulus=31)
    assert orientation.modulus == 31
    assert orientation.is_valid(small_ring)


def test_centralized_bfs_and_dfs_agree_on_paths():
    path = generators.path(6)
    assert centralized_orientation(path, "dfs").names == centralized_orientation(path, "bfs").names


# ----------------------------------------------------------------------
# High-level API
# ----------------------------------------------------------------------
def test_orient_with_dftno_returns_valid_result(small_random):
    result = orient_with_dftno(small_random, seed=1)
    assert isinstance(result, OrientationResult)
    assert result.orientation.is_valid(small_random)
    assert result.stabilization_steps is not None
    assert result.stabilization_rounds is not None
    assert result.network is small_random
    assert result.protocol.name == "dftno"


def test_orient_with_dftno_matches_centralized_baseline(small_random):
    result = orient_with_dftno(small_random, seed=2)
    baseline = centralized_orientation(small_random, order="dfs")
    assert result.orientation.names == baseline.names
    assert result.orientation.edge_labels == baseline.edge_labels


def test_orient_with_stno_bfs_and_dfs(small_random):
    bfs_result = orient_with_stno(small_random, tree="bfs", seed=3)
    dfs_result = orient_with_stno(small_random, tree="dfs", seed=4)
    assert bfs_result.orientation.is_valid(small_random)
    assert dfs_result.orientation.is_valid(small_random)
    # The DFS-tree variant reproduces DFTNO's names (Chapter 5 observation).
    assert dfs_result.orientation.names == centralized_orientation(small_random, "dfs").names


def test_orient_with_stno_accepts_protocol_instance(small_tree):
    result = orient_with_stno(small_tree, tree=BFSSpanningTree(), seed=5)
    assert result.orientation.is_valid(small_tree)


def test_orient_from_clean_state(small_ring):
    result = orient_with_dftno(small_ring, seed=6, from_arbitrary_state=False)
    assert result.orientation.is_valid(small_ring)


def test_orient_with_explicit_daemon_and_confirm_steps(small_ring):
    result = orient_with_stno(
        small_ring, seed=7, daemon=SynchronousDaemon(), confirm_steps=20
    )
    assert result.orientation.is_valid(small_ring)


def test_orient_with_trace_recording(small_ring):
    result = orient_with_dftno(small_ring, seed=8, record_trace=True)
    assert result.run.trace is not None
    assert len(result.run.trace) > 0


def test_orient_raises_convergence_error_on_tiny_budget(small_random):
    with pytest.raises(ConvergenceError):
        orient_with_dftno(small_random, seed=9, max_steps=3)


def test_orient_with_modulus(small_ring):
    result = orient_with_dftno(small_ring, seed=10, modulus=29)
    assert result.orientation.modulus == 29
    assert result.orientation.is_valid(small_ring)


def test_extract_orientation_reads_configuration(small_ring):
    result = orient_with_dftno(small_ring, seed=11)
    extracted = extract_orientation(small_ring, result.run.configuration)
    assert extracted.names == result.orientation.names


def test_orientation_results_expose_run_statistics(small_ring):
    result = orient_with_stno(small_ring, seed=12, daemon=CentralDaemon("round_robin"))
    assert result.run.steps >= result.stabilization_steps
    assert result.run.moves > 0
    assert result.run.rounds >= 1
