"""Unit tests for the chordal sense of direction (Section 2.2)."""

from __future__ import annotations

import pytest

from repro.core.chordal import (
    ChordalOrientation,
    chordal_edge_label,
    inverse_label,
    is_locally_oriented,
)
from repro.errors import SpecificationError
from repro.graphs import generators


def test_chordal_edge_label_definition():
    assert chordal_edge_label(3, 1, 5) == 2
    assert chordal_edge_label(1, 3, 5) == 3
    assert chordal_edge_label(0, 4, 5) == 1
    assert chordal_edge_label(4, 4, 5) == 0


def test_chordal_edge_label_rejects_bad_modulus():
    with pytest.raises(SpecificationError):
        chordal_edge_label(1, 2, 0)


def test_inverse_label_is_modular_inverse():
    for modulus in (3, 5, 8):
        for label in range(modulus):
            assert (label + inverse_label(label, modulus)) % modulus == 0


def test_inverse_label_rejects_bad_modulus():
    with pytest.raises(SpecificationError):
        inverse_label(1, -1)


def test_edge_symmetry_of_chordal_labels():
    # The label at one endpoint is the inverse (mod N) of the label at the other.
    for modulus in (4, 7, 11):
        for a in range(modulus):
            for b in range(modulus):
                if a == b:
                    continue
                assert chordal_edge_label(a, b, modulus) == inverse_label(
                    chordal_edge_label(b, a, modulus), modulus
                )


def test_is_locally_oriented():
    assert is_locally_oriented({1: 1, 2: 2, 3: 3})
    assert not is_locally_oriented({1: 1, 2: 1})
    assert is_locally_oriented({})


# ----------------------------------------------------------------------
# ChordalOrientation
# ----------------------------------------------------------------------
def test_from_names_builds_valid_orientation(small_random):
    names = {node: node for node in small_random.nodes()}
    orientation = ChordalOrientation.from_names(small_random, names)
    assert orientation.is_valid(small_random)
    assert orientation.modulus == small_random.n


def test_name_and_node_lookup(small_ring):
    names = {node: (node + 2) % small_ring.n for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names)
    assert orientation.name_of(0) == 2
    assert orientation.node_named(2) == 0
    with pytest.raises(SpecificationError):
        orientation.node_named(99)


def test_neighbor_name_derivation(small_random):
    names = {node: node for node in small_random.nodes()}
    orientation = ChordalOrientation.from_names(small_random, names)
    for node in small_random.nodes():
        for neighbor in small_random.neighbors(node):
            assert orientation.neighbor_name(node, neighbor) == names[neighbor]


def test_cyclic_distance(small_ring):
    names = {node: node for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names)
    assert orientation.cyclic_distance(0, 2) == 2
    assert orientation.cyclic_distance(2, 0) == small_ring.n - 2
    assert orientation.cyclic_distance(3, 3) == 0


def test_label_accessor(small_ring):
    names = {node: node for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names)
    assert orientation.label(1, 0) == 1
    assert orientation.label(0, 1) == small_ring.n - 1


def test_violations_detects_duplicate_names(small_ring):
    names = {node: 0 for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names)
    problems = orientation.violations(small_ring)
    assert any("share name" in text for text in problems)
    assert not orientation.is_valid(small_ring)


def test_violations_detects_out_of_range_name(small_ring):
    names = {node: node for node in small_ring.nodes()}
    names[1] = 99
    orientation = ChordalOrientation.from_names(small_ring, names)
    assert any("outside" in text for text in orientation.violations(small_ring))


def test_violations_detects_wrong_edge_label(small_ring):
    names = {node: node for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names)
    orientation.edge_labels[0][1] = (orientation.edge_labels[0][1] + 1) % small_ring.n
    problems = orientation.violations(small_ring)
    assert any("expected" in text for text in problems)


def test_violations_detects_missing_name_and_label(small_ring):
    orientation = ChordalOrientation(names={}, edge_labels={}, modulus=small_ring.n)
    problems = orientation.violations(small_ring)
    assert any("has no name" in text for text in problems)
    assert any("unlabeled" in text for text in problems)


def test_violations_detects_edge_symmetry_break(small_ring):
    names = {node: node for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names)
    # Break symmetry on one side only.
    orientation.edge_labels[0][1] = 3
    orientation.names[0] = 0  # keep names untouched
    problems = orientation.violations(small_ring)
    assert any("edge symmetry" in text for text in problems)


def test_require_valid_raises_with_details(small_ring):
    names = {node: 0 for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names)
    with pytest.raises(SpecificationError) as excinfo:
        orientation.require_valid(small_ring)
    assert "share name" in str(excinfo.value)


def test_format_lists_every_processor(small_ring):
    names = {node: node for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names)
    text = orientation.format(small_ring)
    for node in small_ring.nodes():
        assert f"processor {node}:" in text


def test_explicit_modulus_larger_than_n(small_ring):
    names = {node: node for node in small_ring.nodes()}
    orientation = ChordalOrientation.from_names(small_ring, names, modulus=17)
    assert orientation.modulus == 17
    assert orientation.is_valid(small_ring)
