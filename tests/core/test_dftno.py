"""Tests for DFTNO: network orientation using depth-first token circulation."""

from __future__ import annotations

import pytest

from repro.core.dftno import DFTNO, VAR_MAX, build_dftno
from repro.core.specification import VAR_EDGE_LABELS, VAR_NAME, OrientationSpecification
from repro.graphs import generators
from repro.runtime.composition import HookedComposition
from repro.runtime.daemon import (
    AdversarialDaemon,
    CentralDaemon,
    DistributedDaemon,
    SynchronousDaemon,
)
from repro.runtime.scheduler import Scheduler
from repro.substrates.token_circulation import DepthFirstTokenCirculation, dfs_preorder
from tests.conftest import topologies_for_sweeps


def stabilize(network, seed=0, daemon=None, max_steps=120_000):
    protocol = build_dftno()
    scheduler = Scheduler(network, protocol, daemon=daemon or DistributedDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=max_steps)
    assert result.converged, f"DFTNO did not stabilize on {network.name}"
    return protocol, result


# ----------------------------------------------------------------------
# Construction and structure
# ----------------------------------------------------------------------
def test_build_dftno_composes_token_and_overlay():
    protocol = build_dftno()
    assert isinstance(protocol, HookedComposition)
    assert isinstance(protocol.base, DepthFirstTokenCirculation)
    assert isinstance(protocol.overlay, DFTNO)
    assert [layer.name for layer in protocol.layers()] == ["dftc", "dftno"]


def test_overlay_declares_orientation_variables(small_random):
    overlay = DFTNO()
    names = set(overlay.variable_names(small_random, 0))
    assert names == {VAR_NAME, VAR_MAX, VAR_EDGE_LABELS}


def test_overlay_hooks_target_existing_token_actions(small_random):
    protocol = build_dftno()
    protocol.validate(small_random)  # would raise if a hook targeted a missing action
    root_hooks = set(protocol.overlay.hooks(small_random, small_random.root))
    assert DepthFirstTokenCirculation.ACTION_ROOT_START in root_hooks
    other_hooks = set(protocol.overlay.hooks(small_random, 1))
    assert DepthFirstTokenCirculation.ACTION_FORWARD in other_hooks


def test_modulus_defaults_to_network_size(small_random):
    overlay = DFTNO()
    assert overlay.modulus(small_random) == small_random.n
    assert DFTNO(modulus=64).modulus(small_random) == 64


def test_expected_names_are_dfs_preorder(figure_network):
    overlay = DFTNO()
    assert overlay.expected_names(figure_network) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_space_bits_are_delta_log_n_shaped():
    overlay = DFTNO()
    star = generators.star(16)
    ring = generators.ring(16)
    hub_bits = overlay.space_bits(star, 0)
    leaf_bits = overlay.space_bits(star, 1)
    ring_bits = overlay.space_bits(ring, 0)
    assert hub_bits > leaf_bits            # grows with the degree
    assert hub_bits > ring_bits            # the hub has the largest degree
    bigger = overlay.space_bits(generators.ring(64), 0)
    assert bigger > ring_bits              # grows with log N


# ----------------------------------------------------------------------
# Stabilized behaviour
# ----------------------------------------------------------------------
def test_stabilizes_on_figure_network_to_figure_names(figure_network):
    protocol, result = stabilize(figure_network, seed=1)
    names = {node: result.configuration.get(node, VAR_NAME) for node in figure_network.nodes()}
    assert names == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_names_converge_to_dfs_preorder(small_random, seed):
    protocol, result = stabilize(small_random, seed=seed)
    expected = {node: index for index, node in enumerate(dfs_preorder(small_random))}
    names = {node: result.configuration.get(node, VAR_NAME) for node in small_random.nodes()}
    assert names == expected


def test_edge_labels_satisfy_sp2(small_random):
    protocol, result = stabilize(small_random, seed=3)
    spec = OrientationSpecification()
    report = spec.check(small_random, result.configuration)
    assert report.holds


def test_orientation_is_chordal_and_locally_unique(small_random):
    protocol, result = stabilize(small_random, seed=4)
    orientation = OrientationSpecification().extract(small_random, result.configuration)
    orientation.require_valid(small_random)
    for node in small_random.nodes():
        labels = list(orientation.edge_labels[node].values())
        assert len(labels) == len(set(labels))


@pytest.mark.parametrize(
    "network",
    [t for t in topologies_for_sweeps() if t.n <= 10],
    ids=lambda n: n.name,
)
def test_stabilizes_on_topology_families(network):
    protocol, result = stabilize(network, seed=5)
    spec = OrientationSpecification()
    assert spec.holds(network, result.configuration)


@pytest.mark.parametrize(
    "daemon",
    [CentralDaemon("random"), CentralDaemon("round_robin"), SynchronousDaemon(),
     DistributedDaemon(0.4), AdversarialDaemon(fairness_bound=6)],
    ids=lambda d: d.name,
)
def test_stabilizes_under_every_daemon(small_ring, daemon):
    protocol, result = stabilize(small_ring, seed=6, daemon=daemon)
    assert OrientationSpecification().holds(small_ring, result.configuration)


def test_closure_names_stay_fixed_after_stabilization(small_random):
    protocol = build_dftno()
    scheduler = Scheduler(small_random, protocol, daemon=DistributedDaemon(), seed=7)
    result = scheduler.run_until_legitimate(max_steps=120_000)
    assert result.converged
    names_before = {node: scheduler.configuration.get(node, VAR_NAME) for node in small_random.nodes()}
    spec = OrientationSpecification()
    # Let the token keep circulating for several more waves.
    for _ in range(40 * small_random.n):
        scheduler.step()
    names_after = {node: scheduler.configuration.get(node, VAR_NAME) for node in small_random.nodes()}
    assert names_before == names_after
    assert spec.holds(small_random, scheduler.configuration)


def test_max_counter_reaches_n_minus_one_at_root(small_random):
    protocol = build_dftno()
    scheduler = Scheduler(small_random, protocol, daemon=CentralDaemon("round_robin"), seed=8)
    result = scheduler.run_until_legitimate(max_steps=120_000)
    assert result.converged
    # At the end of every wave the root's counter has adopted the maximum
    # assigned name; sample the executions of the next few waves to catch it.
    seen_max = set()
    for _ in range(40 * small_random.n):
        scheduler.step()
        seen_max.add(scheduler.configuration.get(small_random.root, VAR_MAX))
    assert small_random.n - 1 in seen_max


def test_explicit_modulus_still_produces_unique_names(small_ring):
    protocol = build_dftno(modulus=32)
    scheduler = Scheduler(small_ring, protocol, daemon=DistributedDaemon(), seed=9)
    result = scheduler.run_until_legitimate(max_steps=120_000)
    assert result.converged
    spec = OrientationSpecification(modulus=32)
    assert spec.holds(small_ring, result.configuration)


def test_edge_label_action_disabled_while_holding_token(figure_network):
    protocol = build_dftno()
    overlay = protocol.overlay
    config = protocol.initial_configuration(figure_network)
    # Make the root hold the token and give it a wrong edge label.
    from repro.substrates import token_circulation as tc
    from repro.runtime.processor import ProcessorView

    config.set(0, tc.VAR_STATE, "active")
    labels = config.get(0, VAR_EDGE_LABELS)
    labels[1] = 3
    config.set(0, VAR_EDGE_LABELS, labels)
    view = ProcessorView(0, figure_network, config)
    edge_action = overlay.actions(figure_network, 0)[0]
    assert not edge_action.enabled(view)
    # Once the root no longer holds the token the repair rule fires.
    config.set(0, tc.VAR_STATE, "wait")
    view = ProcessorView(0, figure_network, config)
    assert edge_action.enabled(view)


def test_single_processor_network():
    network = generators.path(1)
    protocol, result = stabilize(network, seed=10, max_steps=5_000)
    assert result.configuration.get(0, VAR_NAME) == 0
