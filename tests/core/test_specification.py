"""Unit tests for the SP_NO specification checker."""

from __future__ import annotations

import pytest

from repro.core.baseline import centralized_orientation
from repro.core.specification import VAR_EDGE_LABELS, VAR_NAME, OrientationSpecification
from repro.graphs import generators
from repro.runtime.configuration import Configuration


def configuration_from_orientation(network, orientation) -> Configuration:
    return Configuration(
        {
            node: {
                VAR_NAME: orientation.names[node],
                VAR_EDGE_LABELS: dict(orientation.edge_labels[node]),
            }
            for node in network.nodes()
        }
    )


@pytest.fixture
def oriented_configuration(small_random):
    orientation = centralized_orientation(small_random)
    return configuration_from_orientation(small_random, orientation)


def test_specification_holds_on_valid_orientation(small_random, oriented_configuration):
    spec = OrientationSpecification()
    report = spec.check(small_random, oriented_configuration)
    assert report.sp1 and report.sp2 and report.holds
    assert report.violations == ()
    assert spec.holds(small_random, oriented_configuration)
    assert spec.sp1_holds(small_random, oriented_configuration)


def test_sp1_violation_duplicate_names(small_random, oriented_configuration):
    oriented_configuration.set(1, VAR_NAME, oriented_configuration.get(2, VAR_NAME))
    report = OrientationSpecification().check(small_random, oriented_configuration)
    assert not report.sp1
    assert any("SP1" in text for text in report.violations)


def test_sp1_violation_out_of_range_name(small_random, oriented_configuration):
    oriented_configuration.set(1, VAR_NAME, small_random.n + 3)
    report = OrientationSpecification().check(small_random, oriented_configuration)
    assert not report.sp1


def test_sp1_violation_non_integer_name(small_random, oriented_configuration):
    oriented_configuration.set(1, VAR_NAME, "three")
    report = OrientationSpecification().check(small_random, oriented_configuration)
    assert not report.sp1


def test_sp2_violation_wrong_label(small_random, oriented_configuration):
    node = 0
    neighbor = small_random.neighbors(node)[0]
    labels = oriented_configuration.get(node, VAR_EDGE_LABELS)
    labels[neighbor] = (labels[neighbor] + 1) % small_random.n
    oriented_configuration.set(node, VAR_EDGE_LABELS, labels)
    report = OrientationSpecification().check(small_random, oriented_configuration)
    assert report.sp1
    assert not report.sp2
    assert any("SP2" in text for text in report.violations)


def test_sp2_violation_missing_label_map(small_random, oriented_configuration):
    oriented_configuration.set(0, VAR_EDGE_LABELS, None)
    report = OrientationSpecification().check(small_random, oriented_configuration)
    assert not report.sp2


def test_effective_modulus_defaults_to_network_size(small_ring):
    spec = OrientationSpecification()
    assert spec.effective_modulus(small_ring) == small_ring.n
    assert OrientationSpecification(modulus=32).effective_modulus(small_ring) == 32


def test_extract_round_trips_orientation(small_random, oriented_configuration):
    spec = OrientationSpecification()
    extracted = spec.extract(small_random, oriented_configuration)
    assert extracted.is_valid(small_random)
    reference = centralized_orientation(small_random)
    assert extracted.names == reference.names


def test_extract_handles_broken_label_maps(small_random, oriented_configuration):
    oriented_configuration.set(0, VAR_EDGE_LABELS, "garbage")
    extracted = OrientationSpecification().extract(small_random, oriented_configuration)
    assert extracted.edge_labels[0][small_random.neighbors(0)[0]] is None
    assert not extracted.is_valid(small_random)


def test_custom_variable_names(small_ring):
    orientation = centralized_orientation(small_ring)
    config = Configuration(
        {
            node: {
                "myname": orientation.names[node],
                "mylabels": dict(orientation.edge_labels[node]),
            }
            for node in small_ring.nodes()
        }
    )
    spec = OrientationSpecification(name_variable="myname", labels_variable="mylabels")
    assert spec.holds(small_ring, config)


def test_report_holds_property():
    from repro.core.specification import SpecificationReport

    assert SpecificationReport(sp1=True, sp2=True).holds
    assert not SpecificationReport(sp1=True, sp2=False).holds
    assert not SpecificationReport(sp1=False, sp2=True).holds
