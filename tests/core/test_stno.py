"""Tests for STNO: network orientation using a spanning tree."""

from __future__ import annotations

import pytest

from repro.core.specification import VAR_EDGE_LABELS, VAR_NAME, OrientationSpecification
from repro.core.stno import STNO, VAR_START, VAR_WEIGHT, build_stno
from repro.graphs import generators
from repro.runtime.composition import LayeredProtocol
from repro.runtime.daemon import (
    AdversarialDaemon,
    CentralDaemon,
    DistributedDaemon,
    SynchronousDaemon,
)
from repro.runtime.scheduler import Scheduler
from repro.substrates.spanning_tree import BFSSpanningTree, DFSSpanningTree, dfs_tree_parents
from repro.substrates.token_circulation import dfs_preorder
from tests.conftest import topologies_for_sweeps


def stabilize(network, tree="bfs", seed=0, daemon=None, max_steps=120_000):
    protocol = build_stno(tree=tree)
    scheduler = Scheduler(network, protocol, daemon=daemon or DistributedDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=max_steps)
    assert result.converged, f"STNO[{tree}] did not stabilize on {network.name}"
    return protocol, result


# ----------------------------------------------------------------------
# Construction and structure
# ----------------------------------------------------------------------
def test_build_stno_with_bfs_and_dfs_trees():
    bfs = build_stno(tree="bfs")
    dfs = build_stno(tree="dfs")
    assert isinstance(bfs, LayeredProtocol)
    assert bfs.name == "stno[bfstree]"
    assert dfs.name == "stno[dfstree]"
    assert isinstance(build_stno(tree=BFSSpanningTree()), LayeredProtocol)


def test_build_stno_rejects_unknown_tree():
    with pytest.raises(ValueError):
        build_stno(tree="mst")


def test_overlay_declares_orientation_variables(small_random):
    overlay = STNO()
    assert set(overlay.variable_names(small_random, 0)) == {
        VAR_NAME,
        VAR_WEIGHT,
        VAR_START,
        VAR_EDGE_LABELS,
    }


def test_modulus_defaults_to_network_size(small_random):
    assert STNO().modulus(small_random) == small_random.n
    assert STNO(modulus=99).modulus(small_random) == 99


def test_expected_names_on_figure_tree(figure_tree):
    overlay = STNO(tree=BFSSpanningTree())
    names = overlay.expected_names(figure_tree)
    assert names == {0: 0, 1: 1, 2: 4, 3: 2, 4: 3}


def test_expected_names_requires_parent_map_for_unknown_tree(figure_tree):
    class Opaque(BFSSpanningTree):
        pass

    overlay = STNO(tree=Opaque())
    # Subclasses of the known substrates still work...
    assert overlay.expected_names(figure_tree)


def test_subtree_weights_reference(figure_tree):
    overlay = STNO()
    parents = {0: None, 1: 0, 2: 0, 3: 1, 4: 1}
    weights = overlay.subtree_weights(figure_tree, parents)
    assert weights == {0: 5, 1: 3, 2: 1, 3: 1, 4: 1}


# ----------------------------------------------------------------------
# Stabilized behaviour on the BFS tree
# ----------------------------------------------------------------------
def test_figure_tree_weights_and_names(figure_tree):
    protocol, result = stabilize(figure_tree, seed=1)
    weights = {node: result.configuration.get(node, VAR_WEIGHT) for node in figure_tree.nodes()}
    names = {node: result.configuration.get(node, VAR_NAME) for node in figure_tree.nodes()}
    assert weights == {0: 5, 1: 3, 2: 1, 3: 1, 4: 1}
    assert names == {0: 0, 1: 1, 2: 4, 3: 2, 4: 3}


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_stabilizes_to_valid_orientation(small_random, seed):
    protocol, result = stabilize(small_random, seed=seed)
    assert OrientationSpecification().holds(small_random, result.configuration)


def test_names_are_tree_preorder(small_random):
    protocol, result = stabilize(small_random, seed=3)
    overlay = next(layer for layer in protocol.layers() if layer.name == "stno")
    expected = overlay.expected_names(small_random)
    names = {node: result.configuration.get(node, VAR_NAME) for node in small_random.nodes()}
    assert names == expected


def test_non_tree_edges_are_labeled(small_random):
    # The network has more edges than a tree; every one of them must be labeled.
    assert small_random.num_edges() > small_random.n - 1
    protocol, result = stabilize(small_random, seed=4)
    for node in small_random.nodes():
        labels = result.configuration.get(node, VAR_EDGE_LABELS)
        assert set(labels) >= set(small_random.neighbors(node))


def test_root_weight_is_network_size(small_random):
    protocol, result = stabilize(small_random, seed=5)
    assert result.configuration.get(small_random.root, VAR_WEIGHT) == small_random.n


def test_stno_is_silent_after_stabilization(small_random):
    protocol = build_stno(tree="bfs")
    scheduler = Scheduler(small_random, protocol, daemon=DistributedDaemon(), seed=6)
    result = scheduler.run(max_steps=120_000)
    # The BFS tree and the orientation layer are both silent, so the composed
    # protocol terminates -- and the terminal configuration is legitimate.
    assert result.terminated
    assert protocol.legitimate(small_random, result.configuration)


@pytest.mark.parametrize(
    "network",
    [t for t in topologies_for_sweeps() if t.n <= 10],
    ids=lambda n: n.name,
)
def test_stabilizes_on_topology_families(network):
    protocol, result = stabilize(network, seed=7)
    assert OrientationSpecification().holds(network, result.configuration)


@pytest.mark.parametrize(
    "daemon",
    [CentralDaemon("random"), CentralDaemon("round_robin"), SynchronousDaemon(),
     DistributedDaemon(0.4), AdversarialDaemon(fairness_bound=6)],
    ids=lambda d: d.name,
)
def test_stabilizes_under_every_daemon(small_tree, daemon):
    protocol, result = stabilize(small_tree, seed=8, daemon=daemon)
    assert OrientationSpecification().holds(small_tree, result.configuration)


def test_explicit_modulus(small_tree):
    protocol = build_stno(tree="bfs", modulus=40)
    scheduler = Scheduler(small_tree, protocol, seed=9)
    result = scheduler.run_until_legitimate(max_steps=120_000)
    assert result.converged
    assert OrientationSpecification(modulus=40).holds(small_tree, result.configuration)


def test_start_table_assigns_disjoint_intervals(small_random):
    protocol, result = stabilize(small_random, seed=10)
    overlay = next(layer for layer in protocol.layers() if layer.name == "stno")
    tree = overlay.tree_layer
    children = tree.children_map(small_random, result.configuration)
    for node in small_random.nodes():
        starts = result.configuration.get(node, VAR_START)
        kids = children[node]
        intervals = []
        for child in kids:
            weight = result.configuration.get(child, VAR_WEIGHT)
            intervals.append(range(starts[child], starts[child] + weight))
        flattened = [value for interval in intervals for value in interval]
        assert len(flattened) == len(set(flattened)), "child intervals overlap"


# ----------------------------------------------------------------------
# STNO over the DFS tree (the Chapter 5 observation)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])
def test_stno_on_dfs_tree_names_like_dftno(small_random, seed):
    protocol, result = stabilize(small_random, tree="dfs", seed=seed)
    expected = {node: index for index, node in enumerate(dfs_preorder(small_random))}
    names = {node: result.configuration.get(node, VAR_NAME) for node in small_random.nodes()}
    assert names == expected


def test_stno_on_dfs_tree_uses_token_parents(figure_network):
    protocol, result = stabilize(figure_network, tree="dfs", seed=2)
    tree = next(layer for layer in protocol.layers() if layer.name == "dfstree-overlay")
    del tree  # structural presence is enough; parents are checked via DFSSpanningTree
    stno_layer = next(layer for layer in protocol.layers() if layer.name == "stno")
    assert isinstance(stno_layer.tree_layer, DFSSpanningTree)
    parents = stno_layer.tree_layer.parents(figure_network, result.configuration)
    assert parents == dfs_tree_parents(figure_network)
