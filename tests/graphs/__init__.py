"""Test package."""
