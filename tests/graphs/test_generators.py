"""Unit tests for the topology generators."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.graphs import generators
from repro.graphs.properties import bfs_distances, diameter, is_tree


def test_ring_structure():
    network = generators.ring(7)
    assert network.n == 7
    assert network.num_edges() == 7
    assert all(network.degree(node) == 2 for node in network.nodes())


def test_ring_minimum_size():
    with pytest.raises(NetworkError):
        generators.ring(2)


def test_path_structure():
    network = generators.path(5)
    assert network.num_edges() == 4
    assert network.degree(0) == 1
    assert network.degree(2) == 2
    assert is_tree(network)


def test_star_structure():
    network = generators.star(6)
    assert network.degree(0) == 5
    assert all(network.degree(node) == 1 for node in range(1, 6))
    assert is_tree(network)


def test_complete_structure():
    network = generators.complete(5)
    assert network.num_edges() == 10
    assert all(network.degree(node) == 4 for node in network.nodes())


def test_wheel_structure():
    network = generators.wheel(6)
    assert network.degree(0) == 5
    assert all(network.degree(node) == 3 for node in range(1, 6))


def test_kary_tree_structure():
    network = generators.kary_tree(7, 2)
    assert is_tree(network)
    assert network.degree(0) == 2
    assert network.degree(3) == 1  # a leaf


def test_kary_tree_arity_three():
    network = generators.kary_tree(13, 3)
    assert is_tree(network)
    assert network.degree(0) == 3


def test_caterpillar_structure():
    network = generators.caterpillar(4, legs_per_node=2)
    assert network.n == 4 + 8
    assert is_tree(network)


def test_grid_structure():
    network = generators.grid(3, 4)
    assert network.n == 12
    assert network.num_edges() == 3 * 3 + 2 * 4
    assert network.max_degree == 4


def test_torus_structure():
    network = generators.torus(3, 4)
    assert network.n == 12
    assert all(network.degree(node) == 4 for node in network.nodes())


def test_torus_rejects_small_dimensions():
    with pytest.raises(NetworkError):
        generators.torus(2, 5)


def test_hypercube_structure():
    network = generators.hypercube(4)
    assert network.n == 16
    assert all(network.degree(node) == 4 for node in network.nodes())
    assert diameter(network) == 4


def test_lollipop_structure():
    network = generators.lollipop(4, 3)
    assert network.n == 7
    assert network.degree(6) == 1


def test_random_tree_is_tree():
    network = generators.random_tree(20, seed=5)
    assert is_tree(network)
    assert network.n == 20


def test_random_tree_deterministic_for_seed():
    a = generators.random_tree(15, seed=9)
    b = generators.random_tree(15, seed=9)
    assert a.edges() == b.edges()


def test_random_connected_is_connected_and_contains_tree():
    network = generators.random_connected(25, extra_edge_probability=0.1, seed=2)
    assert network.n == 25
    assert network.num_edges() >= 24
    distances = bfs_distances(network)
    assert len(distances) == 25


def test_random_connected_probability_bounds():
    with pytest.raises(NetworkError):
        generators.random_connected(10, extra_edge_probability=1.5)


def test_random_connected_zero_extra_probability_gives_tree():
    network = generators.random_connected(12, extra_edge_probability=0.0, seed=4)
    assert is_tree(network)


def test_random_regularish_degree_bounds():
    network = generators.random_regularish(16, degree=4, seed=3)
    assert all(2 <= network.degree(node) <= 4 for node in network.nodes())


def test_random_regularish_rejects_bad_degree():
    with pytest.raises(NetworkError):
        generators.random_regularish(10, degree=1)
    with pytest.raises(NetworkError):
        generators.random_regularish(10, degree=10)


def test_figure_3_1_1_network_shape():
    network = generators.figure_3_1_1_network()
    assert network.n == 5
    assert is_tree(network)
    # Root must try b (processor 1) before a (processor 4) for the figure's order.
    assert network.neighbors(0) == (1, 4)
    assert set(generators.FIGURE_3_1_1_LABELS.values()) == {"r", "a", "b", "c", "d"}


def test_figure_4_1_1_network_shape():
    network = generators.figure_4_1_1_network()
    assert network.n == 5
    assert is_tree(network)
    assert network.degree(0) == 2
    assert network.degree(1) == 3


def test_figure_2_2_1_network_has_chord():
    network = generators.figure_2_2_1_network()
    assert network.n == 5
    assert network.num_edges() == 6


def test_family_dispatch():
    for name in ("ring", "path", "star", "complete", "binary_tree", "random_tree",
                 "random_connected", "grid"):
        network = generators.family(name, 9, seed=1)
        assert network.n >= 2


def test_family_unknown_name():
    with pytest.raises(NetworkError):
        generators.family("moebius", 9)
