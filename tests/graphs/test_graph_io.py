"""Unit tests for network serialization."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.graphs import generators, io
from repro.graphs.network import RootedNetwork


def test_dict_round_trip_preserves_structure_and_ports():
    network = generators.ring(5).with_port_orders({0: (4, 1)})
    data = io.to_dict(network)
    rebuilt = io.from_dict(data)
    assert rebuilt == network
    assert rebuilt.neighbors(0) == (4, 1)


def test_json_round_trip():
    network = generators.grid(3, 3)
    text = io.to_json(network)
    rebuilt = io.from_json(text)
    assert rebuilt == network


def test_from_json_rejects_invalid_text():
    with pytest.raises(NetworkError):
        io.from_json("{not json")


def test_from_dict_rejects_missing_fields():
    with pytest.raises(NetworkError):
        io.from_dict({"edges": [[0, 1]]})


def test_adjacency_text_round_trip():
    network = generators.kary_tree(7, 2)
    text = io.to_adjacency_text(network)
    rebuilt = io.from_adjacency_text(text, name="rebuilt")
    assert rebuilt.edges() == network.edges()
    assert rebuilt.root == network.root
    assert rebuilt.neighbors(1) == network.neighbors(1)


def test_adjacency_text_parsing_hand_written():
    text = """
    4 1
    0: 1 2
    1: 0 3
    2: 0
    3: 1
    """
    network = io.from_adjacency_text(text)
    assert network.n == 4
    assert network.root == 1
    assert network.has_edge(0, 2)


def test_adjacency_text_rejects_empty_input():
    with pytest.raises(NetworkError):
        io.from_adjacency_text("   \n  ")


def test_adjacency_text_rejects_bad_header():
    with pytest.raises(NetworkError):
        io.from_adjacency_text("4\n0: 1\n")


def test_adjacency_text_rejects_malformed_line():
    with pytest.raises(NetworkError):
        io.from_adjacency_text("2 0\n0 1\n")
    with pytest.raises(NetworkError):
        io.from_adjacency_text("2 0\n0: x\n")


def test_to_dict_is_json_compatible():
    import json

    network = RootedNetwork(3, [(0, 1), (1, 2)], root=2, name="tiny")
    data = io.to_dict(network)
    json.dumps(data)  # must not raise
    assert data["root"] == 2
    assert data["name"] == "tiny"
