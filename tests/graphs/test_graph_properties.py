"""Unit tests for structural graph queries."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.graphs import generators
from repro.graphs.network import RootedNetwork
from repro.graphs.properties import (
    average_degree,
    bfs_distances,
    degree_histogram,
    diameter,
    eccentricity,
    is_spanning_tree,
    is_tree,
    radius_from_root,
    spanning_tree_children,
    tree_height,
)


def test_bfs_distances_from_root():
    network = generators.path(5)
    distances = bfs_distances(network)
    assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_bfs_distances_from_other_source():
    network = generators.path(5)
    distances = bfs_distances(network, source=2)
    assert distances[0] == 2 and distances[4] == 2


def test_eccentricity_and_diameter_on_path():
    network = generators.path(6)
    assert eccentricity(network, 0) == 5
    assert eccentricity(network, 2) == 3
    assert diameter(network) == 5


def test_diameter_of_complete_graph_is_one():
    assert diameter(generators.complete(6)) == 1


def test_radius_from_root():
    network = generators.kary_tree(7, 2)
    assert radius_from_root(network) == 2


def test_is_tree():
    assert is_tree(generators.path(4))
    assert not is_tree(generators.ring(4))


def test_degree_histogram_and_average_degree():
    network = generators.star(5)
    histogram = degree_histogram(network)
    assert histogram == {4: 1, 1: 4}
    assert average_degree(network) == pytest.approx(2 * 4 / 5)


def test_tree_height_on_valid_parent_map():
    network = generators.kary_tree(7, 2)
    parents = {0: None, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2}
    assert tree_height(network, parents) == 2


def test_tree_height_rejects_cycle():
    network = generators.ring(4)
    parents = {0: None, 1: 2, 2: 1, 3: 0}
    with pytest.raises(NetworkError):
        tree_height(network, parents)


def test_tree_height_rejects_non_neighbor_parent():
    network = generators.path(4)
    parents = {0: None, 1: 0, 2: 0, 3: 2}  # 2 is not adjacent to 0
    with pytest.raises(NetworkError):
        tree_height(network, parents)


def test_tree_height_rejects_missing_parent():
    network = generators.path(3)
    parents = {0: None, 1: 0, 2: None}
    with pytest.raises(NetworkError):
        tree_height(network, parents)


def test_spanning_tree_children_in_port_order():
    network = RootedNetwork(4, [(0, 1), (0, 2), (0, 3)])
    parents = {0: None, 1: 0, 2: 0, 3: 0}
    children = spanning_tree_children(network, parents)
    assert children[0] == (1, 2, 3)
    assert children[1] == ()


def test_is_spanning_tree_accepts_valid_tree():
    network = generators.ring(5)
    parents = {0: None, 1: 0, 2: 1, 3: 2, 4: 0}
    assert is_spanning_tree(network, parents)


def test_is_spanning_tree_rejects_rooted_elsewhere():
    network = generators.ring(5)
    parents = {0: 1, 1: None, 2: 1, 3: 2, 4: 0}
    assert not is_spanning_tree(network, parents)


def test_is_spanning_tree_rejects_cycle():
    network = generators.ring(4)
    parents = {0: None, 1: 2, 2: 1, 3: 0}
    assert not is_spanning_tree(network, parents)
