"""Unit tests for :class:`repro.graphs.network.RootedNetwork`."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.graphs.network import RootedNetwork


def test_basic_construction():
    network = RootedNetwork(4, [(0, 1), (1, 2), (2, 3)], root=0, name="p4")
    assert network.n == 4
    assert network.root == 0
    assert network.name == "p4"
    assert network.num_edges() == 3
    assert len(network) == 4
    assert list(network) == [0, 1, 2, 3]


def test_neighbors_are_in_port_order():
    network = RootedNetwork(4, [(0, 3), (0, 1), (0, 2)])
    assert network.neighbors(0) == (1, 2, 3)
    assert network.degree(0) == 3
    assert network.neighbor_set(0) == frozenset({1, 2, 3})


def test_custom_port_orders_respected():
    network = RootedNetwork(4, [(0, 1), (0, 2), (0, 3)], port_orders={0: (3, 1, 2)})
    assert network.neighbors(0) == (3, 1, 2)
    assert network.port(0, 3) == 0
    assert network.neighbor_at(0, 1) == 1


def test_custom_port_order_must_cover_exact_neighbors():
    with pytest.raises(NetworkError):
        RootedNetwork(4, [(0, 1), (0, 2), (0, 3)], port_orders={0: (1, 2)})
    with pytest.raises(NetworkError):
        RootedNetwork(4, [(0, 1), (0, 2), (0, 3)], port_orders={0: (1, 2, 2)})


def test_port_lookup_errors():
    network = RootedNetwork(3, [(0, 1), (1, 2)])
    with pytest.raises(NetworkError):
        network.port(0, 2)
    with pytest.raises(NetworkError):
        network.neighbor_at(0, 5)


def test_has_edge_is_symmetric():
    network = RootedNetwork(3, [(0, 1), (1, 2)])
    assert network.has_edge(0, 1)
    assert network.has_edge(1, 0)
    assert not network.has_edge(0, 2)


def test_edges_are_canonical_pairs():
    network = RootedNetwork(3, [(2, 1), (1, 0)])
    assert network.edges() == frozenset({(0, 1), (1, 2)})


def test_single_processor_network_is_allowed():
    network = RootedNetwork(1, [])
    assert network.n == 1
    assert network.degree(0) == 0
    assert network.max_degree == 0


def test_rejects_empty_network():
    with pytest.raises(NetworkError):
        RootedNetwork(0, [])


def test_rejects_self_loop():
    with pytest.raises(NetworkError):
        RootedNetwork(3, [(0, 0), (0, 1), (1, 2)])


def test_rejects_duplicate_edge():
    with pytest.raises(NetworkError):
        RootedNetwork(3, [(0, 1), (1, 0), (1, 2)])


def test_rejects_out_of_range_edge():
    with pytest.raises(NetworkError):
        RootedNetwork(3, [(0, 5)])


def test_rejects_bad_root():
    with pytest.raises(NetworkError):
        RootedNetwork(3, [(0, 1), (1, 2)], root=7)


def test_rejects_disconnected_graph():
    with pytest.raises(NetworkError) as excinfo:
        RootedNetwork(4, [(0, 1), (2, 3)])
    assert "not connected" in str(excinfo.value)


def test_rejects_multi_node_network_without_edges():
    with pytest.raises(NetworkError):
        RootedNetwork(3, [])


def test_is_root():
    network = RootedNetwork(3, [(0, 1), (1, 2)], root=1)
    assert network.is_root(1)
    assert not network.is_root(0)


def test_with_root_reroots_without_changing_structure():
    network = RootedNetwork(4, [(0, 1), (1, 2), (2, 3)], root=0)
    rerooted = network.with_root(3)
    assert rerooted.root == 3
    assert rerooted.edges() == network.edges()
    assert rerooted.neighbors(1) == network.neighbors(1)


def test_with_port_orders_overrides_selected_nodes():
    network = RootedNetwork(4, [(0, 1), (0, 2), (0, 3)])
    updated = network.with_port_orders({0: (2, 3, 1)})
    assert updated.neighbors(0) == (2, 3, 1)
    assert updated.neighbors(1) == network.neighbors(1)


def test_equality_and_hash():
    a = RootedNetwork(3, [(0, 1), (1, 2)])
    b = RootedNetwork(3, [(1, 2), (0, 1)])
    c = RootedNetwork(3, [(0, 1), (1, 2)], root=1)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert a != "not a network"


def test_repr_mentions_key_facts():
    network = RootedNetwork(3, [(0, 1), (1, 2)], name="tiny")
    text = repr(network)
    assert "tiny" in text and "n=3" in text


def test_max_degree():
    network = RootedNetwork(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    assert network.max_degree == 4
