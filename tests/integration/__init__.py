"""Test package."""
