"""Integration tests: the full stack from topology to applications."""

from __future__ import annotations

import pytest

import repro
from repro import (
    generators,
    make_daemon,
    orient_with_dftno,
    orient_with_stno,
    space_summary,
)
from repro.core.baseline import centralized_orientation
from repro.runtime.faults import corrupt_configuration
from repro.runtime.scheduler import Scheduler
from repro.core.dftno import build_dftno
from repro.core.specification import OrientationSpecification
from repro.sod.routing import ChordalRouter
from repro.sod.traversal import dfs_traversal_with_sod


def test_public_api_surface_is_importable():
    # Everything advertised in __all__ must resolve.
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    assert repro.__version__ == "1.2.0"


def test_quickstart_docstring_example():
    network = generators.random_connected(12, seed=1)
    result = orient_with_dftno(network, seed=1)
    assert sorted(result.orientation.names.values()) == list(range(12))


@pytest.mark.parametrize("orient", [orient_with_dftno, orient_with_stno])
def test_protocol_output_feeds_routing_and_traversal(orient):
    network = generators.random_connected(14, extra_edge_probability=0.3, seed=4)
    result = orient(network, seed=5)
    orientation = result.orientation

    router = ChordalRouter(network, orientation)
    route = router.route(1, 12)
    assert route.path[0] == 1 and route.path[-1] == 12

    traversal = dfs_traversal_with_sod(network, orientation)
    assert traversal.messages == 2 * (network.n - 1)


def test_dftno_and_centralized_baseline_agree_across_topologies():
    for builder in (lambda: generators.ring(8), lambda: generators.grid(3, 3),
                    lambda: generators.complete(6), lambda: generators.kary_tree(7, 2)):
        network = builder()
        distributed = orient_with_dftno(network, seed=6)
        centralized = centralized_orientation(network, order="dfs")
        assert distributed.orientation.names == centralized.names


def test_stabilization_time_scales_roughly_linearly_for_dftno():
    small = orient_with_dftno(generators.ring(8), seed=7)
    large = orient_with_dftno(generators.ring(32), seed=7)
    assert large.stabilization_steps > small.stabilization_steps


def test_space_summaries_match_paper_comparison():
    network = generators.random_connected(20, extra_edge_probability=0.2, seed=8)
    dftno = orient_with_dftno(network, seed=9)
    stno = orient_with_stno(network, seed=10)
    dftno_layers = space_summary(dftno.protocol, network)["per_layer"]
    stno_layers = space_summary(stno.protocol, network)["per_layer"]
    # Chapter 5: the orientation layers cost the same order; DFTNO's substrate
    # needs only O(log N) bits while STNO's tree substrate is comparable or larger
    # only through its parent/child bookkeeping.
    assert dftno_layers["dftno"]["max_bits_per_node"] <= stno_layers["stno"]["max_bits_per_node"]
    assert dftno_layers["dftc"]["max_bits_per_node"] < dftno_layers["dftno"]["max_bits_per_node"]


def test_recovery_after_mid_run_corruption():
    network = generators.random_connected(10, extra_edge_probability=0.3, seed=11)
    protocol = build_dftno()
    scheduler = Scheduler(network, protocol, seed=12)
    first = scheduler.run_until_legitimate(max_steps=100_000)
    assert first.converged

    specification = OrientationSpecification()
    corrupted = corrupt_configuration(
        scheduler.configuration, protocol, network, node_fraction=1.0, seed=13
    )
    scheduler.set_configuration(corrupted)
    recovery = scheduler.run_until_legitimate(max_steps=scheduler.steps_executed + 100_000)
    assert recovery.converged
    assert specification.holds(network, scheduler.configuration)


def test_repeated_corruption_bursts_always_recover():
    network = generators.ring(9)
    protocol = build_dftno()
    scheduler = Scheduler(network, protocol, seed=14)
    specification = OrientationSpecification()
    for burst in range(4):
        result = scheduler.run_until_legitimate(max_steps=scheduler.steps_executed + 80_000)
        assert result.converged, f"burst {burst} did not recover"
        scheduler.set_configuration(
            corrupt_configuration(
                scheduler.configuration, protocol, network, node_fraction=0.5, seed=burst
            )
        )
    final = scheduler.run_until_legitimate(max_steps=scheduler.steps_executed + 80_000)
    assert final.converged
    assert specification.holds(network, scheduler.configuration)


@pytest.mark.parametrize("daemon_kind", ["central", "distributed", "synchronous", "adversarial"])
def test_both_protocols_converge_under_all_daemons_on_figure_networks(daemon_kind):
    for network in (generators.figure_3_1_1_network(), generators.figure_4_1_1_network()):
        dftno = orient_with_dftno(network, daemon=make_daemon(daemon_kind), seed=15)
        stno = orient_with_stno(network, daemon=make_daemon(daemon_kind), seed=16)
        assert dftno.orientation.is_valid(network)
        assert stno.orientation.is_valid(network)


def test_rerooting_changes_names_but_not_validity():
    network = generators.random_connected(10, seed=17)
    original = orient_with_dftno(network, seed=18)
    rerooted_network = network.with_root(5)
    rerooted = orient_with_dftno(rerooted_network, seed=18)
    assert rerooted.orientation.names[5] == 0
    assert rerooted.orientation.is_valid(rerooted_network)
    assert original.orientation.names[network.root] == 0
