"""Fixture: the guard-mutation violation, silenced by the escape hatch.
Zero findings."""


class DisabledViolation:
    """Same shape as guard_mutates, with the disable comment on the line."""

    name = "disabled-violation"

    def variables(self, network, node):
        return [int_variable("dv_x", 0)]

    def actions(self, network, node):
        def guard(view):
            view.write("dv_x", 1)  # repro-lint: disable=RL001
            return view.read("dv_x") == 0

        def step(view):
            view.write("dv_x", 0)

        return [Action("DV-Reset", guard, step, layer=self.name)]
