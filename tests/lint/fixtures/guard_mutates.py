"""Fixture: a guard that writes state.  Exactly one RL001."""


class GuardMutates:
    """Broken layer: the guard 'caches' a value by writing it."""

    name = "guard-mutates"

    def variables(self, network, node):
        return [int_variable("gm_x", 0)]

    def actions(self, network, node):
        def guard(view):
            view.write("gm_x", 1)
            return view.read("gm_x") == 0

        def step(view):
            view.write("gm_x", 0)

        return [Action("GM-Reset", guard, step, layer=self.name)]
