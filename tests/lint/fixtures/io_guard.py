"""Fixture: a guard performing I/O.  Exactly one RL002."""


class IOGuard:
    """Broken layer: the guard prints while deciding."""

    name = "io-guard"

    def variables(self, network, node):
        return [int_variable("io_x", 0)]

    def actions(self, network, node):
        def guard(view):
            print("evaluating", view.node)
            return view.read("io_x") == 0

        def step(view):
            view.write("io_x", 1)

        return [Action("IO-Log", guard, step, layer=self.name)]
