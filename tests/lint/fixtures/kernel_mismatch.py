"""Fixture protocol whose batch kernel lies about its read/write sets.

The per-node action reads and writes ``km_v``; the kernel declares it reads a
variable the action never touches (``km_ghost``) and omits ``km_v`` from its
writes.  ``repro-lint --kernels`` must flag both directions as RL007.
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action, BatchAction
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.variables import VariableSpec, int_variable

VAR_VALUE = "km_v"


class KernelMismatchProtocol(Protocol):
    """Minimal kernel-bearing protocol with a deliberately-wrong declaration."""

    name = "kernel-mismatch"

    ACTION_BUMP = "KM-Bump"

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        return [int_variable(VAR_VALUE, 0, 1, initial=0, description="toggle bit")]

    def legitimate(self, network: RootedNetwork, configuration) -> bool:
        return all(
            configuration.get(node, VAR_VALUE) == 1 for node in network.nodes()
        )

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        def bump_guard(view: ProcessorView) -> bool:
            return view.read(VAR_VALUE) == 0

        def bump_step(view: ProcessorView) -> None:
            view.write(VAR_VALUE, 1)

        return [Action(self.ACTION_BUMP, bump_guard, bump_step, layer=self.name)]

    def batch_actions(self, network: RootedNetwork) -> Sequence[BatchAction]:
        def bump_guard(view):
            return view.array(VAR_VALUE) == 0

        def bump_step(view, mask):
            np = view.np
            return {VAR_VALUE: np.ones(view.network.n, dtype=np.int64)}

        return [
            BatchAction(
                self.ACTION_BUMP,
                bump_guard,
                bump_step,
                layer=self.name,
                reads=("km_ghost",),  # never read by the per-node action
                writes=(),  # omits km_v, which the action writes
            ),
        ]
