"""Fixture: a statement writing a *neighbor's* state through the view's
private configuration handle.  Exactly one RL005."""


class NeighborWrite:
    """Broken layer: the statement pushes its value into the neighbor."""

    name = "neighbor-write"

    def variables(self, network, node):
        return [int_variable("nw_x", 0)]

    def actions(self, network, node):
        def guard(view):
            return view.read("nw_x") == 0

        def step(view):
            for neighbor in view.neighbors:
                view._configuration.set(neighbor, "nw_x", 1)

        return [Action("NW-Push", guard, step, layer=self.name)]
