"""Fixture: a guard that reads a non-neighbor through the view's private
configuration handle.  Exactly one RL004."""


class NonLocalRead:
    """Broken layer: the guard peeks at processor 0 from everywhere."""

    name = "nonlocal-read"

    def variables(self, network, node):
        return [int_variable("nl_x", 0)]

    def actions(self, network, node):
        def guard(view):
            return view._configuration.get(0, "nl_x") == view.read("nl_x")

        def step(view):
            view.write("nl_x", view.read("nl_x") + 1)

        return [Action("NL-Copy", guard, step, layer=self.name)]
