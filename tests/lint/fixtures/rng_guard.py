"""Fixture: a guard consulting an RNG.  Exactly one RL003."""

import random


class RNGGuard:
    """Broken layer: the guard flips a coin."""

    name = "rng-guard"

    def variables(self, network, node):
        return [int_variable("rg_x", 0)]

    def actions(self, network, node):
        def guard(view):
            return random.random() < 0.5 and view.read("rg_x") == 0

        def step(view):
            view.write("rg_x", 1)

        return [Action("RG-Flip", guard, step, layer=self.name)]
