"""Fixture: a statement writing a variable no layer ever declared.
Exactly one RL006."""


class UndeclaredWrite:
    """Broken layer: the statement invents a variable on the fly."""

    name = "undeclared-write"

    def variables(self, network, node):
        return [int_variable("uw_x", 0)]

    def actions(self, network, node):
        def guard(view):
            return view.read("uw_x") == 0

        def step(view):
            view.write("uw_scratch", 1)

        return [Action("UW-Scribble", guard, step, layer=self.name)]
