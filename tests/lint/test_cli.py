"""The ``repro-lint`` command line: exit codes, JSON output, summaries."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE_SRC = Path(__file__).parent.parent.parent / "src" / "repro"


def test_clean_package_exits_zero(capsys) -> None:
    assert main([str(PACKAGE_SRC)]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out


def test_findings_exit_one_with_location_and_rule(capsys) -> None:
    assert main([str(FIXTURES / "guard_mutates.py")]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out
    assert "guard_mutates.py:" in out
    assert "GuardMutates/GM-Reset" in out


def test_json_format_is_machine_readable(capsys) -> None:
    assert main([str(FIXTURES / "undeclared_write.py"), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    assert payload[0]["rule"] == "RL006"
    assert payload[0]["severity"] == "error"
    assert payload[0]["line"] > 0


def test_protocols_flag_lints_layer_modules(capsys) -> None:
    assert main(["--protocols", "dftno"]) == 0
    assert "no findings" in capsys.readouterr().out


def test_summary_artifact_written(tmp_path, capsys) -> None:
    out_file = tmp_path / "rwsets.json"
    assert main([str(PACKAGE_SRC), "--summary", str(out_file)]) == 0
    payload = json.loads(out_file.read_text())
    assert "no_pi" in payload["variables"]
    assert any("dftno" in module for module in payload["modules"])


def test_missing_path_is_a_usage_error(capsys) -> None:
    assert main(["/no/such/path"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_race_mode_exits_zero_on_clean_run(capsys) -> None:
    assert main(["--race", "dftno", "--shards", "2", "--size", "6", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "converged" in out
