"""The runtime half of RL004: ``check_guard_locality`` attributes violations.

A guard that reaches around the view API (``view._configuration.get`` on a
far node) must raise :class:`~repro.errors.GuardLocalityError` naming the
processor, layer, action, rule and the offending reads -- the fix for the
old anonymous mid-step ``ProtocolError``."""

from __future__ import annotations

import pytest

from repro.errors import GuardLocalityError, ProtocolError
from repro.graphs import generators
from repro.lint import finding_from_guard_error
from repro.runtime.actions import Action
from repro.runtime.configuration import Configuration
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import Scheduler
from repro.runtime.variables import int_variable


class _SneakyProtocol(Protocol):
    """A ring layer whose guard reads the antipodal processor's state."""

    name = "sneaky"

    def variables(self, network, node):
        return [int_variable("sn_x", 0, 100)]

    def actions(self, network, node):
        far = (node + network.n // 2) % network.n

        def guard(view):
            # Bypasses read_neighbor's neighbor check on purpose.
            return view._configuration.get(far, "sn_x") == view.read("sn_x")

        def step(view):
            view.write("sn_x", view.read("sn_x") + 1)

        return [Action("SN-Peek", guard, step, layer=self.name)]

    def legitimate(self, network, configuration):
        return False


def _build(check: bool) -> Scheduler:
    network = generators.ring(6)
    protocol = _SneakyProtocol()
    return Scheduler(
        network,
        protocol,
        seed=7,
        configuration=protocol.initial_configuration(network),
        check_guard_locality=check,
    )


def test_sneaky_guard_raises_attributed_error() -> None:
    scheduler = _build(check=True)
    with pytest.raises(GuardLocalityError) as excinfo:
        scheduler.run_until_legitimate(max_steps=10)
    exc = excinfo.value
    assert exc.rule == "RL004"
    assert exc.layer == "sneaky"
    assert exc.action == "SN-Peek"
    assert exc.node is not None
    assert exc.reads, "the offending (node, variable) pairs are attached"
    far, variable = exc.reads[0]
    assert variable == "sn_x"
    assert "SN-Peek" in str(exc)
    assert "sneaky" in str(exc)


def test_guard_locality_error_is_a_protocol_error() -> None:
    # Existing callers catching ProtocolError keep working.
    scheduler = _build(check=True)
    with pytest.raises(ProtocolError):
        scheduler.run_until_legitimate(max_steps=10)


def test_sneaky_guard_undetected_without_debug_mode() -> None:
    # The fast path must not pay for tracking: the same protocol "runs".
    scheduler = _build(check=False)
    scheduler.run_until_legitimate(max_steps=5)
    assert scheduler.steps_executed > 0


def test_guard_error_routes_through_findings_formatter() -> None:
    scheduler = _build(check=True)
    with pytest.raises(GuardLocalityError) as excinfo:
        scheduler.run_until_legitimate(max_steps=10)
    finding = finding_from_guard_error(excinfo.value)
    assert finding.rule == "RL004"
    assert finding.severity == "error"
    assert finding.layer == "sneaky"
    assert finding.function == "SN-Peek"


def test_real_protocols_run_clean_under_debug_mode() -> None:
    from repro.core.dftno import build_dftno

    network = generators.random_connected(8, seed=2)
    protocol = build_dftno()
    scheduler = Scheduler(
        network,
        protocol,
        seed=3,
        configuration=protocol.initial_configuration(network),
        check_guard_locality=True,
    )
    result = scheduler.run_until_legitimate()
    assert result.converged
