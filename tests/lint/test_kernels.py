"""The batch-kernel cross-check (``repro-lint --kernels``, rule RL007)."""

from __future__ import annotations

import json

from repro.graphs import generators
from repro.lint.cli import main
from repro.lint.findings import RULES
from repro.lint.kernels import check_kernels


def test_rl007_in_rule_catalog() -> None:
    severity, description = RULES["RL007"]
    assert severity == "error"
    assert "kernel" in description


def test_registered_kernels_match_their_static_sets() -> None:
    findings, checked = check_kernels()
    assert findings == []
    # Both kernel-bearing substrates (BFS tree + Dijkstra ring), two kernels each.
    assert checked == 4


def test_mismatched_kernel_is_flagged_both_directions() -> None:
    from tests.lint.fixtures.kernel_mismatch import KernelMismatchProtocol

    findings, checked = check_kernels(
        [(KernelMismatchProtocol(), generators.random_connected(6, seed=1))]
    )
    assert checked == 1
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "RL007"
    assert finding.severity == "error"
    assert finding.function == "KM-Bump"
    assert finding.line > 0
    assert "kernel_mismatch.py" in finding.path
    # The message names every direction of the lie.
    assert "km_v" in finding.message  # missing from declared reads and writes
    assert "km_ghost" in finding.message  # over-declared read


def test_kernel_without_per_node_twin_is_flagged() -> None:
    from tests.lint.fixtures.kernel_mismatch import KernelMismatchProtocol

    class Orphan(KernelMismatchProtocol):
        def batch_actions(self, network):
            (kernel,) = super().batch_actions(network)
            kernel = type(kernel)(
                "KM-Nonexistent", kernel.guard, kernel.step, layer=kernel.layer
            )
            return [kernel]

    findings, checked = check_kernels(
        [(Orphan(), generators.random_connected(6, seed=1))]
    )
    assert checked == 0
    assert len(findings) == 1
    assert findings[0].rule == "RL007"
    assert "no per-node action" in findings[0].message


def test_cli_kernels_flag_clean(capsys) -> None:
    assert main(["--kernels"]) == 0
    out = capsys.readouterr().out
    assert "no findings" in out
    assert "4 kernel(s) verified" in out


def test_cli_kernels_flag_json(capsys) -> None:
    assert main(["--kernels", "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out) == []
