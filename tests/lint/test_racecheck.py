"""The dynamic race sanitizer: silent on correct sharded runs, loud on an
intentionally-skipped frontier exchange, and loud on write-ownership races."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.dftno import build_dftno
from repro.errors import ReproError
from repro.graphs import generators
from repro.lint import ShardRaceChecker, run_race_check
from repro.shard import ShardedScheduler


def _sharded(network, shards: int, checker: ShardRaceChecker | None, seed: int = 5):
    protocol = build_dftno()
    return ShardedScheduler(
        network,
        protocol,
        seed=seed,
        configuration=protocol.initial_configuration(network),
        shards=shards,
        mode="inline",
        race_checker=checker,
    )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_correct_sharded_runs_have_zero_findings(shards: int) -> None:
    network = generators.random_connected(10, seed=4)
    checker = ShardRaceChecker()
    with _sharded(network, shards, checker) as scheduler:
        result = scheduler.run_until_legitimate()
    assert result.converged
    assert checker.findings == []
    assert checker.mirror_audits > 0
    assert checker.execution_audits > 0


def test_run_race_check_helper_is_clean_on_shipped_protocols() -> None:
    checker, converged = run_race_check(
        protocol="dftno", family="random_connected", size=8, shards=2, seed=1
    )
    assert converged
    assert checker.findings == []


def test_skipped_frontier_exchange_is_detected() -> None:
    """Drop one shard's ``apply`` message once: the canonical frontier-
    exchange gap.  The next mirror audit must flag the starved shard."""
    network = generators.random_connected(10, seed=4)
    checker = ShardRaceChecker()
    with _sharded(network, 2, checker) as scheduler:
        original = scheduler._command
        state = {"dropped": False}

        def dropping_command(messages):
            if not state["dropped"]:
                for index, message in list(messages.items()):
                    if message[0] == "apply":
                        del messages[index]
                        state["dropped"] = True
                        break
            return original(messages)

        scheduler.__dict__["_command"] = dropping_command
        try:
            scheduler.run_until_legitimate(max_steps=200)
        except ReproError:
            pass  # a starved shard may also answer out of protocol; fine
    assert state["dropped"], "the fault was injected"
    assert checker.findings, "the skipped exchange went unnoticed"
    rules = {finding.rule for finding in checker.findings}
    assert rules <= {"RC101", "RC102"}
    # The starved shard's own nodes and/or its ghosts diverged.
    assert any(f.rule in ("RC101", "RC102") for f in checker.findings)
    assert all("stale mirror" in f.message for f in checker.findings)


def test_foreign_and_double_writes_are_detected() -> None:
    network = generators.random_connected(10, seed=4)
    checker = ShardRaceChecker()
    with _sharded(network, 2, checker) as scheduler:
        scheduler.enabled_nodes()  # force the initial load
        blocks = scheduler.partition.blocks
        own = blocks[0][0]
        foreign = blocks[1][0]
        # Shard 0 reports a write for a node shard 1 owns, and both shards
        # report the same node: one RC103 each.
        answers = {
            0: {own: ("A", {"x": 1}), foreign: ("A", {"x": 2})},
            1: {foreign: ("B", {"x": 3})},
        }
        checker.audit_execution(scheduler, {0: [own], 1: [foreign]}, answers)
    rules = [finding.rule for finding in checker.findings]
    assert rules == ["RC103", "RC103"]
    assert "does not own" in checker.findings[0].message
    assert "applied twice" in checker.findings[1].message


def test_stride_skips_intermediate_audits() -> None:
    network = generators.random_connected(8, seed=2)
    eager = ShardRaceChecker(stride=1)
    with _sharded(network, 2, eager) as scheduler:
        scheduler.run_until_legitimate()
    sparse = ShardRaceChecker(stride=5)
    with _sharded(network, 2, sparse) as scheduler:
        scheduler.run_until_legitimate()
    assert sparse.findings == []
    assert 0 < sparse.mirror_audits < eager.mirror_audits


def test_checker_rejects_bad_stride() -> None:
    with pytest.raises(ValueError):
        ShardRaceChecker(stride=0)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
def test_race_check_runs_under_fork_mode() -> None:
    checker, converged = run_race_check(
        protocol="dftno", family="ring", size=6, shards=2, seed=2, mode="fork"
    )
    assert converged
    assert checker.findings == []
