"""The static verifier: every fixture fires its rule exactly once, every
shipped protocol lints clean, and the read/write summaries resolve."""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.lint import (
    RULES,
    analyze_paths,
    build_summary,
    lint_paths,
    modules_for_protocols,
)

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE = Path(repro.__file__).parent

#: fixture file -> the one rule it must trigger, exactly once.
FIXTURE_RULES = {
    "guard_mutates.py": "RL001",
    "io_guard.py": "RL002",
    "rng_guard.py": "RL003",
    "nonlocal_read.py": "RL004",
    "neighbor_write.py": "RL005",
    "undeclared_write.py": "RL006",
}


@pytest.mark.parametrize("filename,rule", sorted(FIXTURE_RULES.items()))
def test_fixture_fires_exactly_its_rule(filename: str, rule: str) -> None:
    findings = lint_paths([FIXTURES / filename])
    assert [f.rule for f in findings] == [rule]
    finding = findings[0]
    assert finding.path.endswith(filename)
    assert finding.line > 0
    assert finding.severity == RULES[rule][0]
    assert finding.layer  # owner class attributed
    assert finding.function  # action name attributed


def test_disable_comment_silences_the_line() -> None:
    assert lint_paths([FIXTURES / "disabled.py"]) == []


def test_fixture_directory_totals() -> None:
    # One finding per broken fixture, none from __init__ / disabled.
    findings = lint_paths([FIXTURES])
    assert len(findings) == len(FIXTURE_RULES)
    assert sorted(f.rule for f in findings) == sorted(FIXTURE_RULES.values())


def test_shipped_package_lints_clean() -> None:
    assert lint_paths([PACKAGE]) == []


@pytest.mark.parametrize("protocol", ["dftno", "stno-bfs", "stno-dfs"])
def test_protocol_modules_lint_clean(protocol: str) -> None:
    modules = modules_for_protocols([protocol])
    assert modules, "protocol must map to at least one module"
    assert lint_paths(modules) == []


def test_unknown_protocol_rejected() -> None:
    with pytest.raises(ValueError):
        modules_for_protocols(["no-such-protocol"])


def test_summary_resolves_all_shipped_actions() -> None:
    summary = build_summary([PACKAGE])
    assert "no_eta" in summary["variables"]
    assert "no_pi" in summary["variables"]
    actions = {
        name: data
        for module in summary["modules"].values()
        for name, data in module.items()
    }
    assert len(actions) >= 25  # all layered actions plus composition hooks
    unresolved = [
        name
        for name, data in actions.items()
        if not (data["guard_resolved"] and data["statement_resolved"])
    ]
    assert unresolved == []
    # A spot check against the DFTNO edge-label action of the paper.
    edge_label = actions["DFTNO.NO-EdgeLabel"]
    assert "no_pi" in edge_label["writes"]
    assert "no_eta" in edge_label["guard_reads_neighbor"]


def test_guard_footprints_are_closed_neighborhood_only() -> None:
    # The static pass derives per-action read sets; none of the shipped
    # layers may read anything but declared protocol variables.
    analyzer = analyze_paths([PACKAGE])
    universe = analyzer.variable_universe
    for summary in analyzer.summaries:
        reads = (
            summary.guard_reads_own
            | summary.guard_reads_neighbor
            | summary.statement_reads_own
            | summary.statement_reads_neighbor
            | summary.writes
        )
        assert reads <= universe, f"{summary.owner}.{summary.action} reads {reads - universe}"
