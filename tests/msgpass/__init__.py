"""Test package."""
