"""Tests for the synchronous message-passing simulator."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.graphs import generators
from repro.msgpass.node import Context, NodeProgram
from repro.msgpass.simulator import SynchronousSimulator


class Flood(NodeProgram):
    """Root floods a value; every processor records the round it learned it."""

    def on_start(self, context: Context) -> None:
        if context.is_root:
            context.state["value"] = 42
            context.state["learned_round"] = 0
            context.send_all(42)

    def on_message(self, context: Context, sender: int, payload) -> None:
        if "value" not in context.state:
            context.state["value"] = payload
            context.state["learned_round"] = context.round
            context.send_all(payload, exclude=sender)


class PingPong(NodeProgram):
    """Two processors bounce a counter until it reaches a limit."""

    def __init__(self, limit: int) -> None:
        self.limit = limit

    def on_start(self, context: Context) -> None:
        if context.is_root:
            context.send(context.neighbors[0], 1)

    def on_message(self, context: Context, sender: int, payload) -> None:
        context.state["last"] = payload
        if payload < self.limit:
            context.send(sender, payload + 1)
        else:
            context.halt()


class ChattyForever(NodeProgram):
    def on_start(self, context: Context) -> None:
        context.send_all("hi")

    def on_message(self, context: Context, sender: int, payload) -> None:
        context.send(sender, "hi")


class BadSender(NodeProgram):
    def on_start(self, context: Context) -> None:
        if context.is_root:
            context.send(context.node + 100, "boom")


def test_flood_reaches_every_processor_with_bfs_rounds():
    network = generators.grid(3, 3)
    result = SynchronousSimulator(network, Flood()).run()
    assert all(result.state_of(node).get("value") == 42 for node in network.nodes())
    from repro.graphs.properties import bfs_distances

    distances = bfs_distances(network)
    for node in network.nodes():
        if node != network.root:
            assert result.state_of(node)["learned_round"] == distances[node]


def test_flood_message_count_is_bounded_by_twice_edges():
    network = generators.random_connected(12, extra_edge_probability=0.3, seed=1)
    result = SynchronousSimulator(network, Flood()).run()
    assert result.messages_sent <= 2 * network.num_edges()
    assert result.messages_sent >= network.n - 1


def test_ping_pong_round_and_message_accounting():
    network = generators.path(2)
    result = SynchronousSimulator(network, PingPong(limit=5)).run()
    assert result.messages_sent == 5
    assert result.rounds == 6  # round 0 start + 5 delivery rounds
    assert result.messages_per_round[0] == 1
    assert sum(result.messages_per_round) == result.messages_sent
    assert result.halted  # the processor that saw the limit halted


def test_halted_processor_receives_no_further_deliveries():
    network = generators.path(2)
    result = SynchronousSimulator(network, PingPong(limit=1)).run()
    # Root sends 1; neighbor halts after seeing the limit; nothing else happens.
    assert result.messages_sent == 1
    assert 1 in result.halted


def test_simulator_raises_on_round_budget_exhaustion():
    network = generators.path(2)
    simulator = SynchronousSimulator(network, ChattyForever(), max_rounds=20)
    with pytest.raises(SimulationError):
        simulator.run()


def test_send_to_non_neighbor_is_rejected():
    network = generators.path(3)
    with pytest.raises(SimulationError):
        SynchronousSimulator(network, BadSender()).run()


def test_context_exposes_topology_and_state():
    network = generators.star(4)
    captured = {}

    class Probe(NodeProgram):
        def on_start(self, context: Context) -> None:
            if context.node == 0:
                captured["neighbors"] = context.neighbors
                captured["degree"] = context.degree
                captured["is_root"] = context.is_root
                captured["round"] = context.round
                context.state["touched"] = True

    result = SynchronousSimulator(network, Probe()).run()
    assert captured["neighbors"] == (1, 2, 3)
    assert captured["degree"] == 3
    assert captured["is_root"] is True
    assert captured["round"] == 0
    assert result.state_of(0)["touched"] is True
    assert result.state_of(1) == {}


def test_on_round_hook_called_after_messages():
    network = generators.path(2)
    calls = []

    class RoundHook(NodeProgram):
        def on_start(self, context: Context) -> None:
            if context.is_root:
                context.send(1, "x")

        def on_message(self, context: Context, sender: int, payload) -> None:
            calls.append(("message", context.node))

        def on_round(self, context: Context) -> None:
            calls.append(("round", context.node))

    SynchronousSimulator(network, RoundHook()).run()
    assert calls == [("message", 1), ("round", 1)]
