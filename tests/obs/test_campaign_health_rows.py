"""Telemetry / health blobs through the campaign layer: rows, stores, CLI."""

from __future__ import annotations

import json

from repro.campaign import ResultStore, SqliteResultStore
from repro.campaign.cli import main as campaign_main
from repro.campaign.grid import Grid
from repro.campaign.runner import run_grid, run_task

TINY_GRID = Grid(sizes=(5, 6), protocols=("dftno",), families=("ring",), trials=1, seed=11)


def _canonical(row: dict) -> str:
    return json.dumps(row, sort_keys=True, separators=(",", ":"), default=str)


def test_run_task_telemetry_and_health_attach_without_touching_anything_else():
    spec = TINY_GRID.expand()[0]
    plain = run_task(spec)
    monitored = run_task(spec, telemetry=True, health=True)
    assert "telemetry" not in plain and "health" not in plain
    assert monitored["telemetry"]["samples"]
    assert monitored["telemetry"]["guard_heat"]
    assert monitored["health"]["anomalies"] == []
    stripped = {
        key: value
        for key, value in monitored.items()
        if key not in ("telemetry", "health")
    }
    assert stripped == plain
    assert monitored["config_hash"] == plain["config_hash"]


def test_telemetry_stride_is_forwarded():
    spec = TINY_GRID.expand()[0]
    coarse = run_task(spec, telemetry=64)
    fine = run_task(spec, telemetry=1)
    assert fine["telemetry"]["stride"] <= 64
    assert len(fine["telemetry"]["samples"]) >= len(coarse["telemetry"]["samples"])


def test_monitored_rows_round_trip_byte_stable_through_both_backends(tmp_path):
    for name, store_type in (
        ("health.jsonl", ResultStore),
        ("health.sqlite", SqliteResultStore),
    ):
        path = tmp_path / name
        result = run_grid(
            TINY_GRID, store=store_type(path), telemetry=True, health=True
        )
        stored = store_type(path).rows()
        assert [_canonical(row) for row in stored] == [
            _canonical(row) for row in result.rows
        ], name
        assert all(isinstance(row["telemetry"], dict) for row in stored)
        assert all(isinstance(row["health"], dict) for row in stored)


def test_monitored_campaigns_share_hashes_with_plain_campaigns(tmp_path):
    plain = run_grid(TINY_GRID, store=ResultStore(tmp_path / "plain.jsonl"))
    monitored = run_grid(
        TINY_GRID,
        store=ResultStore(tmp_path / "monitored.jsonl"),
        telemetry=True,
        health=True,
    )
    for plain_row, monitored_row in zip(plain.rows, monitored.rows):
        assert plain_row["config_hash"] == monitored_row["config_hash"]
        stripped = {
            k: v for k, v in monitored_row.items() if k not in ("telemetry", "health")
        }
        assert stripped == plain_row


def test_parallel_monitored_rows_match_serial(tmp_path):
    """Telemetry/health kwargs must pickle into pool workers unchanged."""
    serial = run_grid(TINY_GRID, telemetry=True, health=True, jobs=1)
    parallel = run_grid(TINY_GRID, telemetry=True, health=True, jobs=2)
    for serial_row, parallel_row in zip(serial.rows, parallel.rows):
        assert _canonical(serial_row) == _canonical(parallel_row)


# ----------------------------------------------------------------------
# CLI: run --telemetry/--health, report --health, report --perf graceful
# ----------------------------------------------------------------------
def _store_args(tmp_path) -> list[str]:
    return ["--out", str(tmp_path / "cli.jsonl")]


def _grid_args() -> list[str]:
    return ["--protocol", "dftno", "--family", "ring", "--sizes", "5", "--trials", "1"]


def test_cli_run_and_report_health(tmp_path, capsys):
    assert (
        campaign_main(
            ["run", *_grid_args(), *_store_args(tmp_path), "--telemetry",
             "--health", "--quiet"]
        )
        == 0
    )
    capsys.readouterr()
    assert campaign_main(["report", *_store_args(tmp_path), "--health"]) == 0
    out = capsys.readouterr().out
    assert "1/1 rows monitored, 0 anomalous" in out
    row = ResultStore(tmp_path / "cli.jsonl").rows()[0]
    assert row["telemetry"]["samples"]
    assert row["health"]["anomalies"] == []


def test_cli_report_health_flags_anomalous_rows(tmp_path, capsys):
    store = ResultStore(tmp_path / "cli.jsonl")
    store.append(
        {
            "config_hash": "abc",
            "task_index": 0,
            "converged": False,
            "health": {"anomalies": [{"kind": "stall", "step": 5, "detail": "x"}]},
        }
    )
    assert campaign_main(["report", *_store_args(tmp_path), "--health"]) == 1
    out = capsys.readouterr().out
    assert "1 anomalous" in out
    assert "stall=1" in out


def test_cli_report_health_without_records_is_clean(tmp_path, capsys):
    assert (
        campaign_main(["run", *_grid_args(), *_store_args(tmp_path), "--quiet"]) == 0
    )
    capsys.readouterr()
    assert campaign_main(["report", *_store_args(tmp_path), "--health"]) == 0
    assert "run --health" in capsys.readouterr().out


def test_cli_report_perf_without_summaries_exits_clean(tmp_path, capsys):
    """The satellite fix: no perf rows is a message, not an error exit."""
    assert (
        campaign_main(["run", *_grid_args(), *_store_args(tmp_path), "--quiet"]) == 0
    )
    capsys.readouterr()
    assert campaign_main(["report", *_store_args(tmp_path), "--perf"]) == 0
    assert "run --perf" in capsys.readouterr().out


def test_cli_status_shard_view(tmp_path, capsys):
    args = ["--protocol", "dftno", "--family", "ring", "--sizes", "5,6",
            "--trials", "2", "--seed", "11"]
    assert (
        campaign_main(["run", *args, *_store_args(tmp_path), "--quiet"]) == 0
    )
    capsys.readouterr()
    # All-slices view: per-shard totals must cover the whole grid.
    assert campaign_main(
        ["status", *args, *_store_args(tmp_path), "--shard", "/2"]
    ) == 0
    out = capsys.readouterr().out
    assert "per-shard status (2 slices)" in out
    assert "0/2" in out and "1/2" in out
    # Single-slice view renders only the requested slice.
    assert campaign_main(
        ["status", *args, *_store_args(tmp_path), "--shard", "1/2"]
    ) == 0
    out = capsys.readouterr().out
    assert "per-shard status" in out
    assert "1/2" in out and "0/2" not in out


def test_cli_status_shard_requires_grid_options(tmp_path, capsys):
    (tmp_path / "cli.jsonl").write_text("")
    assert campaign_main(["status", *_store_args(tmp_path), "--shard", "0/2"]) == 2
    assert "grid options" in capsys.readouterr().err
