"""Perf summaries through the campaign layer: rows, stores, and hashes."""

from __future__ import annotations

from repro.campaign.grid import Grid
from repro.campaign.runner import CampaignRunner, run_grid, run_task
from repro.campaign import ResultStore, SqliteResultStore
from repro.obs import merge_summaries, summary_counter

TINY_GRID = Grid(sizes=(5, 6), protocols=("dftno",), families=("ring",), trials=1, seed=11)


def test_run_task_perf_attaches_a_summary_without_touching_anything_else():
    spec = TINY_GRID.expand()[0]
    plain = run_task(spec)
    measured = run_task(spec, perf=True)
    assert "perf" not in plain
    perf = measured["perf"]
    assert summary_counter(perf, "steps_timed") > 0
    assert "guard_eval" in perf["phases"]
    stripped = {key: value for key, value in measured.items() if key != "perf"}
    assert stripped == plain
    assert measured["config_hash"] == plain["config_hash"]


def test_perf_rows_round_trip_through_the_jsonl_store(tmp_path):
    path = tmp_path / "perf.jsonl"
    result = run_grid(TINY_GRID, store=ResultStore(path), perf=True)
    stored = ResultStore(path).rows()
    assert stored == result.rows
    assert all(isinstance(row["perf"], dict) for row in stored)
    merged = merge_summaries(*(row["perf"] for row in stored))
    assert summary_counter(merged, "steps_timed") > 0


def test_perf_rows_round_trip_through_the_sqlite_store(tmp_path):
    path = tmp_path / "perf.sqlite"
    store = SqliteResultStore(path)
    result = run_grid(TINY_GRID, store=store, perf=True)
    store.close()
    reopened = SqliteResultStore(path)
    stored = reopened.rows()
    reopened.close()
    assert stored == result.rows
    assert all(isinstance(row["perf"], dict) for row in stored)


def test_perf_campaigns_share_hashes_with_plain_campaigns(tmp_path):
    plain = run_grid(TINY_GRID, store=ResultStore(tmp_path / "plain.jsonl"))
    measured = run_grid(TINY_GRID, store=ResultStore(tmp_path / "perf.jsonl"), perf=True)
    for plain_row, perf_row in zip(plain.rows, measured.rows):
        assert plain_row["config_hash"] == perf_row["config_hash"]
        stripped = {k: v for k, v in perf_row.items() if k != "perf"}
        assert stripped == plain_row


def test_perf_resume_skips_rows_recorded_without_perf(tmp_path):
    """A perf rerun must respect completed work, not redo it for summaries."""
    path = tmp_path / "campaign.jsonl"
    run_grid(TINY_GRID, store=ResultStore(path))
    runner = CampaignRunner(store=ResultStore(path), perf=True)
    result = runner.run(TINY_GRID, resume=True)
    assert result.skipped == len(TINY_GRID.expand())
    assert all("perf" not in row for row in ResultStore(path).rows())
