"""The perf regression gate (scripts/check_perf.py) as an importable unit."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_perf", REPO_ROOT / "scripts" / "check_perf.py"
)
check_perf = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_perf", check_perf)
_SPEC.loader.exec_module(check_perf)


def _payload(
    guard_eval: float = 0.02,
    action_exec: float = 0.004,
    speedup: float = 4.0,
    steps: int = 1000,
    calibration: float = 0.02,
) -> dict:
    return {
        "benchmark": "scheduler_core",
        "speedup_by_n": {"60": speedup},
        "calibration_seconds": calibration,
        "instrumentation": {
            "steps": steps,
            "phases": {"guard_eval": guard_eval, "action_exec": action_exec},
            "disabled_overhead": 0.01,
            "max_disabled_overhead": 0.03,
            "phase_coverage": 0.95,
            "min_phase_coverage": 0.90,
        },
    }


def _write(tmp_path: Path, current: dict, history: list[dict]) -> list[str]:
    current_path = tmp_path / "current.json"
    history_path = tmp_path / "history.jsonl"
    current_path.write_text(json.dumps(current))
    history_path.write_text("".join(json.dumps(line) + "\n" for line in history))
    return ["--current", str(current_path), "--history", str(history_path)]


def test_gate_passes_on_matching_history(tmp_path, capsys):
    args = _write(tmp_path, _payload(), [_payload(), _payload(), _payload()])
    assert check_perf.main(args) == 0
    out = capsys.readouterr().out
    assert "no regression" in out
    assert "guard_eval" in out


def test_gate_fails_on_phase_regression(tmp_path, capsys):
    args = _write(
        tmp_path, _payload(guard_eval=0.05), [_payload(), _payload(), _payload()]
    )
    assert check_perf.main(args) == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "phase guard_eval per-step time regressed" in captured.err


def test_gate_fails_on_speedup_regression(tmp_path, capsys):
    args = _write(tmp_path, _payload(speedup=1.5), [_payload(), _payload()])
    assert check_perf.main(args) == 1
    assert "speedup at n=60 regressed" in capsys.readouterr().err


def test_median_defeats_one_outlier_line(tmp_path):
    history = [_payload(), _payload(), _payload(guard_eval=0.5)]
    assert check_perf.main(_write(tmp_path, _payload(), history)) == 0


def test_calibration_units_absorb_machine_speed(tmp_path):
    """A uniformly 3x-slower machine (3x phase seconds AND 3x calibration)
    must not trip the gate -- the normalization is the whole point."""
    slow = _payload(guard_eval=0.06, action_exec=0.012, calibration=0.06)
    assert check_perf.main(_write(tmp_path, slow, [_payload(), _payload()])) == 0


def test_min_share_skips_noise_phases(tmp_path, capsys):
    # Regress action_exec 3x but raise the share floor above it: with
    # --min-share 0.5 only guard_eval (~63% of phase time here) is compared,
    # so the regressed-but-minor phase is skipped and the gate passes.
    current = _payload(action_exec=0.012)
    args = _write(tmp_path, current, [_payload(), _payload()])
    assert check_perf.main([*args, "--min-share", "0.5"]) == 0
    assert "skipped" in capsys.readouterr().out
    # With the default floor (5%) the same regression fails.
    assert check_perf.main(args) == 1
    assert "action_exec" in capsys.readouterr().err


def test_absolute_thresholds_from_the_payload_itself(tmp_path, capsys):
    current = _payload()
    current["instrumentation"]["disabled_overhead"] = 0.08
    args = _write(tmp_path, current, [_payload()])
    assert check_perf.main(args) == 1
    assert "disabled instrumentation path" in capsys.readouterr().err


def test_empty_history_warns_unless_required(tmp_path, capsys):
    args = _write(tmp_path, _payload(), [])
    assert check_perf.main(args) == 0
    assert "did not actually gate anything" in capsys.readouterr().out
    assert check_perf.main([*args, "--require-history"]) == 1
    assert "did not actually gate anything" in capsys.readouterr().err


def test_other_benchmarks_lines_are_ignored(tmp_path):
    foreign = _payload()
    foreign["benchmark"] = "sharded"
    args = _write(tmp_path, _payload(guard_eval=0.2), [foreign, foreign])
    # Only 'sharded' lines exist -> nothing comparable -> require-history bites.
    assert check_perf.main([*args, "--require-history"]) == 1


def test_missing_or_invalid_artifact_exits_2(tmp_path, capsys):
    history = tmp_path / "history.jsonl"
    history.write_text("")
    missing = tmp_path / "nope.json"
    assert (
        check_perf.main(["--current", str(missing), "--history", str(history)]) == 2
    )
    assert "does not exist" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert check_perf.main(["--current", str(bad), "--history", str(history)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_load_history_skips_garbage(tmp_path):
    path = tmp_path / "history.jsonl"
    path.write_text(
        "not json\n"
        + json.dumps(_payload())
        + "\n[1,2]\n"
        + json.dumps({"benchmark": "other"})
        + "\n"
    )
    lines = check_perf.load_history(path, "scheduler_core")
    assert len(lines) == 1
    assert check_perf.load_history(tmp_path / "missing.jsonl", "x") == []


def test_noncomparable_history_lines_are_named_with_file_and_line(tmp_path, capsys):
    """A phase-incomparable line is reported as history.jsonl:N with a reason."""
    legacy = {"benchmark": "scheduler_core", "speedup_by_n": {"60": 4.0}}
    args = _write(tmp_path, _payload(), [_payload(), legacy, _payload()])
    assert check_perf.main(args) == 0
    out = capsys.readouterr().out
    assert "warning: history.jsonl:2: not phase-comparable" in out
    assert "no instrumentation block" in out


def test_garbage_history_lines_are_named_with_file_and_line(tmp_path, capsys):
    current_path = tmp_path / "current.json"
    history_path = tmp_path / "history.jsonl"
    current_path.write_text(json.dumps(_payload()))
    history_path.write_text(
        json.dumps(_payload()) + "\n{broken\n" + json.dumps(_payload()) + "\n"
    )
    args = ["--current", str(current_path), "--history", str(history_path)]
    assert check_perf.main(args) == 0
    out = capsys.readouterr().out
    assert "warning: history.jsonl:2: not JSON" in out
    assert "line skipped" in out


def test_noncomparable_reason_names_the_first_missing_ingredient():
    reason = check_perf.noncomparable_reason
    assert reason({}) == "no instrumentation block"
    assert reason({"instrumentation": {}}) == "no usable calibration_seconds"
    base = {"calibration_seconds": 0.02}
    assert reason({**base, "instrumentation": {}}) == "no phases dict"
    assert (
        reason({**base, "instrumentation": {"phases": {"guard_eval": 0.1}}})
        == "no usable step count"
    )
    assert (
        reason(
            {**base, "instrumentation": {"steps": 10, "phases": {"guard_eval": "x"}}}
        )
        == "no numeric phase timings"
    )


def test_normalized_phases_requires_all_inputs():
    assert check_perf.normalized_phases({}) is None
    assert check_perf.normalized_phases({"calibration_seconds": 0.02}) is None
    payload = _payload()
    units = check_perf.normalized_phases(payload)
    assert units == pytest.approx(
        {"guard_eval": 0.02 / (1000 * 0.02), "action_exec": 0.004 / (1000 * 0.02)}
    )
    del payload["instrumentation"]["steps"]
    assert check_perf.normalized_phases(payload) is None


def test_as_float_coercion():
    as_float = check_perf._as_float
    assert as_float(3) == 3.0
    assert as_float(2.5) == 2.5
    assert as_float("4.2") == 4.2
    assert as_float(True) is None  # a bool is never a timing
    assert as_float("n/a") is None
    assert as_float(None) is None
    assert as_float({"nested": 1}) is None
    assert as_float([1.0]) is None
    assert as_float(float("nan")) is None
    assert as_float(float("inf")) is None


def test_gate_tolerates_history_from_unknown_engines(tmp_path, capsys):
    """Hostile trajectory lines degrade to "not comparable", never crash.

    The history file is append-only and shared: future benches (or hand
    edits) may stamp the scheduler_core benchmark name onto lines whose
    speedups, steps, phases or calibration are strings, nulls, booleans or
    nested objects.  The gate must skip what it cannot parse and still judge
    the well-formed lines.
    """
    hostile = [
        # Same benchmark name, non-numeric speedup + phase entries.
        {
            "benchmark": "scheduler_core",
            "speedup_by_n": {"60": "fast", 60: None, "500": True},
            "calibration_seconds": "quick",
            "instrumentation": {
                "steps": "many",
                "phases": {"guard_eval": "slow", "action_exec": {"s": 1}},
            },
        },
        # Wrong shapes entirely.
        {"benchmark": "scheduler_core", "speedup_by_n": [4.0], "instrumentation": []},
        # Unknown engine's line that leaked the benchmark name, odd key types.
        {
            "benchmark": "scheduler_core",
            "engine": "somebody-elses",
            "speedup_by_n": {60: 4.0, None: 9.9},
            "calibration_seconds": None,
            "instrumentation": {"steps": 0, "phases": {"guard_eval": 0.01}},
        },
    ]
    args = _write(tmp_path, _payload(), hostile + [_payload(), _payload()])
    assert check_perf.main(args) == 0
    assert "no regression" in capsys.readouterr().out


def test_gate_tolerates_non_numeric_current_thresholds(tmp_path, capsys):
    current = _payload()
    current["instrumentation"]["disabled_overhead"] = "tiny"
    current["instrumentation"]["phase_coverage"] = None
    current["speedup_by_n"]["60"] = "4.0"  # numeric string still compares
    args = _write(tmp_path, current, [_payload(), _payload()])
    assert check_perf.main(args) == 0
    assert "no regression" in capsys.readouterr().out
