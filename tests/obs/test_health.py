"""Stall/divergence watchdog: zero false positives, real positives, plumbing.

The false-positive contract is the load-bearing half: the monitor rides every
substrate x daemon combination of the equivalence matrix (converged runs,
frozen-node library scenarios, legitimately slow adversarial-daemon runs) and
must record **zero** anomalies with default settings -- protocols that cycle
through configurations forever *after* legitimacy (token circulation,
Dijkstra's ring, PIF waves) are exactly the ones a naive cycle detector would
flag.  The positive half uses a toy livelock protocol (never legitimate,
always cycling) and a tiny round budget to prove both anomaly kinds actually
fire and reach every emission channel (snapshot, counters, span stream).
"""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.obs import (
    HealthMonitor,
    Instrumentation,
    ListSpanSink,
    SpanTracer,
    configuration_fingerprint,
    health_summary,
)
from repro.runtime.actions import Action
from repro.runtime.daemon import make_daemon
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import Scheduler
from repro.runtime.variables import VariableSpec
from repro.scenarios.library import build_scenario
from repro.scenarios.runner import ScenarioRunner

from tests.api.test_engine_equivalence import DAEMONS, PROTOCOLS


class Blinker(Protocol):
    """Toy livelock: every node flips a bit forever, never legitimate.

    The configuration cycles with period 2 (central daemon) while the enabled
    set stays full -- the textbook stall the watchdog exists to catch.
    """

    name = "blinker"

    def variables(self, network, node):
        return (
            VariableSpec(
                name="bit",
                initial=lambda net, v: 0,
                random=lambda net, v, rng: rng.randint(0, 1),
                bits=lambda net, v: 1,
            ),
        )

    def actions(self, network, node):
        return (
            Action(
                name="Flip",
                guard=lambda view: True,
                statement=lambda view: view.write("bit", 1 - view.read("bit")),
                layer="toy",
            ),
        )

    def legitimate(self, network, configuration):
        return False


def _monitored_run(protocol_key: str, daemon: str, n: int = 8, seed: int = 3):
    factory, family = PROTOCOLS[protocol_key]
    network = generators.family(family, n, seed=seed)
    monitor = HealthMonitor()
    scheduler = Scheduler(
        network,
        factory(),
        daemon=make_daemon(daemon),
        seed=seed,
        observers=(monitor,),
    )
    budget = 500 * (network.n + network.num_edges()) + 3000
    result = scheduler.run_until_legitimate(max_steps=budget)
    return monitor, result


# ----------------------------------------------------------------------
# False positives: the whole equivalence matrix must stay silent
# ----------------------------------------------------------------------
@pytest.mark.parametrize("daemon", DAEMONS)
@pytest.mark.parametrize("protocol_key", sorted(PROTOCOLS))
def test_no_anomalies_across_matrix(protocol_key, daemon):
    monitor, result = _monitored_run(protocol_key, daemon)
    assert result.converged, (protocol_key, daemon)
    assert monitor.healthy, (protocol_key, daemon, monitor.anomalies)
    snapshot = monitor.snapshot()
    assert snapshot["anomalies"] == []
    assert snapshot["round_budget"] is not None


@pytest.mark.parametrize("scenario_name", ["single_burst", "churn", "blackout"])
@pytest.mark.parametrize("protocol_key", ["dftno", "stno-bfs"])
def test_no_anomalies_in_frozen_node_scenarios(protocol_key, scenario_name):
    """Scenario runs (crashes, frozen nodes, topology churn) stay anomaly-free.

    Crash events freeze nodes mid-run and every event mutates the
    configuration; the monitor's window reset on ``on_event`` is what keeps
    those legitimate disturbances from reading as cycles.
    """
    factory, family = PROTOCOLS[protocol_key]
    network = generators.family(family, 8, seed=5)
    monitor = HealthMonitor()
    runner = ScenarioRunner(
        network,
        factory(),
        build_scenario(scenario_name),
        daemon=make_daemon("distributed"),
        seed=5,
        observers=(monitor,),
    )
    report = runner.run()
    assert report.converged
    assert monitor.healthy, (scenario_name, monitor.anomalies)


def test_post_convergence_cycling_is_not_a_stall():
    """Token circulation keeps moving after legitimacy -- still healthy.

    Run far past convergence with an aggressive check stride so the monitor
    sees the post-legitimacy cycle many times over; the legitimacy gate must
    hold it silent.
    """
    network = generators.family("ring", 6, seed=2)
    factory, _ = PROTOCOLS["dijkstra-ring"]
    monitor = HealthMonitor(check_every=1, cycle_window=16, cycle_repeats=2)
    scheduler = Scheduler(
        network,
        factory(),
        daemon=make_daemon("central"),
        seed=2,
        observers=(monitor,),
    )
    for _ in range(400):
        if scheduler.step() is None:
            break
    assert monitor.checks > 50
    assert monitor.healthy, monitor.anomalies


# ----------------------------------------------------------------------
# True positives: both anomaly kinds fire on genuinely sick runs
# ----------------------------------------------------------------------
def test_stall_detected_on_livelocked_protocol():
    network = generators.family("ring", 4, seed=1)
    monitor = HealthMonitor(check_every=1, cycle_window=16, cycle_repeats=3)
    scheduler = Scheduler(
        network, Blinker(), daemon=make_daemon("central"), seed=1, observers=(monitor,)
    )
    for _ in range(200):
        scheduler.step()
    kinds = {anomaly["kind"] for anomaly in monitor.anomalies}
    assert "stall" in kinds, monitor.snapshot()
    stall = next(a for a in monitor.anomalies if a["kind"] == "stall")
    assert stall["step"] > 0
    assert "revisited" in stall["detail"]


def test_round_budget_anomaly_fires_once():
    network = generators.family("ring", 4, seed=1)
    monitor = HealthMonitor(round_budget=2)
    scheduler = Scheduler(
        network, Blinker(), daemon=make_daemon("central"), seed=1, observers=(monitor,)
    )
    for _ in range(300):
        scheduler.step()
    budget_anomalies = [a for a in monitor.anomalies if a["kind"] == "round_budget"]
    assert len(budget_anomalies) == 1
    assert budget_anomalies[0]["round"] > 2


def test_anomalies_reach_counters_and_span_stream():
    sink = ListSpanSink()
    instrumentation = Instrumentation(tracer=SpanTracer(sink))
    network = generators.family("ring", 4, seed=1)
    monitor = HealthMonitor(round_budget=1, check_every=1, cycle_repeats=2)
    scheduler = Scheduler(
        network,
        Blinker(),
        daemon=make_daemon("central"),
        seed=1,
        observers=(monitor,),
        instrumentation=instrumentation,
    )
    for _ in range(100):
        scheduler.step()
    assert monitor.anomalies
    summary = instrumentation.summary()
    assert summary["counters"]["anomalies"] == len(monitor.anomalies)
    anomaly_spans = [span for span in sink.records if span.get("kind") == "anomaly"]
    assert len(anomaly_spans) == len(monitor.anomalies)
    assert anomaly_spans[0]["anomaly"] in ("stall", "round_budget")
    assert "detail" in anomaly_spans[0]


def test_max_anomalies_caps_recording():
    network = generators.family("ring", 4, seed=1)
    monitor = HealthMonitor(
        check_every=1, cycle_window=8, cycle_repeats=2, max_anomalies=3
    )
    scheduler = Scheduler(
        network, Blinker(), daemon=make_daemon("central"), seed=1, observers=(monitor,)
    )
    for _ in range(500):
        scheduler.step()
    assert len(monitor.anomalies) == 3


# ----------------------------------------------------------------------
# Internals: fingerprinting and the snapshot/summary shapes
# ----------------------------------------------------------------------
def test_configuration_fingerprint_tracks_state():
    network = generators.family("ring", 4, seed=1)
    protocol = Blinker()
    config = protocol.initial_configuration(network)
    before = configuration_fingerprint(config)
    assert before == configuration_fingerprint(config)
    config.apply_writes(0, {"bit": 1})
    after = configuration_fingerprint(config)
    assert after != before
    config.apply_writes(0, {"bit": 0})
    assert configuration_fingerprint(config) == before


def test_snapshot_is_json_stable():
    import json

    monitor, _ = _monitored_run("bfs-tree", "central")
    snapshot = monitor.snapshot()
    encoded = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    assert json.loads(encoded) == snapshot
    assert snapshot["schema"] == 1
    assert snapshot["steps"] > 0


def test_health_summary_aggregates_rows():
    rows = [
        {"task_index": 0, "config_hash": "a", "health": {"anomalies": []}},
        {
            "task_index": 1,
            "config_hash": "b",
            "health": {
                "anomalies": [
                    {"kind": "stall", "step": 10},
                    {"kind": "round_budget", "step": 20},
                ]
            },
        },
        {"task_index": 2, "config_hash": "c"},  # unmonitored
    ]
    summary = health_summary(rows)
    assert summary["rows"] == 3
    assert summary["monitored"] == 2
    assert summary["anomalous"] == 1
    assert summary["by_kind"] == {"stall": 1, "round_budget": 1}
    assert summary["flagged"][0]["config_hash"] == "b"
    assert summary["flagged"][0]["kinds"] == "round_budget,stall"
    assert summary["flagged"][0]["first_step"] == 10


def test_parameter_validation():
    with pytest.raises(ValueError):
        HealthMonitor(check_every=0)
    with pytest.raises(ValueError):
        HealthMonitor(cycle_window=1)
    with pytest.raises(ValueError):
        HealthMonitor(cycle_repeats=0)
    with pytest.raises(ValueError):
        HealthMonitor(budget_multiple=0)
