"""The instrumentation registry: recording, the null path, and merging."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    NullInstrumentation,
    SUMMARY_SCHEMA,
    merge_summaries,
    phase_seconds,
    summary_counter,
)


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------
def test_counters_accumulate_including_fractional_values():
    instr = Instrumentation()
    instr.count("guards_evaluated")
    instr.count("guards_evaluated", 4)
    instr.count("step_seconds", 0.25)
    instr.count("step_seconds", 0.5)
    summary = instr.summary()
    assert summary["counters"] == {"guards_evaluated": 5, "step_seconds": 0.75}
    assert summary["schema"] == SUMMARY_SCHEMA


def test_gauges_track_count_sum_min_max_and_mean():
    instr = Instrumentation()
    for value in (4, 1, 7):
        instr.gauge("dirty_set_size", value)
    stats = instr.summary()["gauges"]["dirty_set_size"]
    assert stats == {"count": 3, "sum": 12, "min": 1, "max": 7, "mean": 4.0}


def test_phase_timers_accumulate_seconds_and_counts():
    instr = Instrumentation()
    instr.phase_time("guard_eval", 0.5)
    instr.phase_time("guard_eval", 0.25, count=3)
    assert instr.summary()["phases"]["guard_eval"] == {"seconds": 0.75, "count": 4}


def test_phase_context_manager_times_the_block():
    instr = Instrumentation()
    with instr.phase("cold_path"):
        pass
    stats = instr.summary()["phases"]["cold_path"]
    assert stats["count"] == 1
    assert stats["seconds"] >= 0.0


def test_record_shard_files_and_refreshes_worker_summaries():
    worker = Instrumentation()
    worker.count("guards_evaluated", 3)
    instr = Instrumentation()
    instr.record_shard(1, worker.summary())
    worker.count("guards_evaluated", 2)
    instr.record_shard(1, worker.summary())  # cumulative refresh replaces
    instr.record_shard(0, None)  # empty summaries are ignored
    summary = instr.summary()
    assert set(summary["shards"]) == {"1"}
    assert summary["shards"]["1"]["counters"]["guards_evaluated"] == 5


def test_summary_is_json_serializable():
    instr = Instrumentation()
    instr.count("a", 1)
    instr.gauge("b", 2)
    instr.phase_time("c", 0.1)
    instr.record_shard(0, {"counters": {"d": 1}})
    assert json.loads(json.dumps(instr.summary())) == instr.summary()


# ---------------------------------------------------------------------------
# The null path
# ---------------------------------------------------------------------------
def test_null_instrumentation_is_disabled_and_records_nothing():
    instr = NULL_INSTRUMENTATION
    assert instr.enabled is False
    assert isinstance(instr, NullInstrumentation)
    instr.count("guards_evaluated", 100)
    instr.gauge("dirty_set_size", 5)
    instr.phase_time("guard_eval", 1.0)
    instr.record_shard(0, {"counters": {"x": 1}})
    instr.merge_summary({"counters": {"x": 1}})
    with instr.phase("anything"):
        pass
    assert instr.summary() == {}


def test_null_instrumentation_shares_no_state_with_real_registries():
    real = Instrumentation()
    real.count("a")
    assert real.enabled is True
    assert NULL_INSTRUMENTATION.summary() == {}
    # The singleton stays clean even after heavy (ab)use elsewhere.
    NULL_INSTRUMENTATION.count("a", 10)
    assert real.summary()["counters"] == {"a": 1}


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------
def _sample(seed: int) -> dict:
    instr = Instrumentation()
    instr.count("guards_evaluated", 3 * seed)
    instr.count(f"only_{seed % 2}", seed)
    instr.gauge("dirty_set_size", seed)
    instr.gauge("dirty_set_size", 10 - seed)
    instr.phase_time("guard_eval", 0.125 * seed, count=seed)
    shard = Instrumentation()
    shard.count("actions_executed", seed)
    instr.record_shard(seed % 2, shard.summary())
    return instr.summary()


def test_merge_summaries_of_nothing_is_empty():
    assert merge_summaries() == {}
    assert merge_summaries(None, {}, None) == {}


def test_merge_summaries_identity_on_a_single_summary():
    summary = _sample(3)
    assert merge_summaries(summary) == summary


def test_merge_summaries_is_commutative_and_associative():
    a, b, c = _sample(1), _sample(2), _sample(3)
    assert merge_summaries(a, b) == merge_summaries(b, a)
    left = merge_summaries(merge_summaries(a, b), c)
    right = merge_summaries(a, merge_summaries(b, c))
    assert left == right == merge_summaries(a, b, c)


def test_merge_summaries_adds_counters_and_combines_gauge_moments():
    merged = merge_summaries(_sample(1), _sample(2))
    assert merged["counters"]["guards_evaluated"] == 9
    assert merged["counters"]["only_1"] == 1
    assert merged["counters"]["only_0"] == 2
    gauge = merged["gauges"]["dirty_set_size"]
    assert gauge == {"count": 4, "sum": 20, "min": 1, "max": 9, "mean": 5.0}
    phase = merged["phases"]["guard_eval"]
    assert phase == {"seconds": pytest.approx(0.375), "count": 3}


def test_merge_summaries_unions_shard_maps_recursively():
    merged = merge_summaries(_sample(1), _sample(2), _sample(3))
    # seeds 1 and 3 landed on shard 1, seed 2 on shard 0.
    assert merged["shards"]["0"]["counters"]["actions_executed"] == 2
    assert merged["shards"]["1"]["counters"]["actions_executed"] == 4


# ---------------------------------------------------------------------------
# Summary helpers
# ---------------------------------------------------------------------------
def test_phase_seconds_selects_names_or_totals_everything():
    summary = {
        "phases": {
            "guard_eval": {"seconds": 1.0, "count": 2},
            "action_exec": {"seconds": 0.5, "count": 2},
        }
    }
    assert phase_seconds(summary) == 1.5
    assert phase_seconds(summary, "guard_eval") == 1.0
    assert phase_seconds(summary, "guard_eval", "missing") == 1.0
    assert phase_seconds(None) == 0.0
    assert phase_seconds({}) == 0.0


def test_summary_counter_reads_with_default():
    summary = {"counters": {"moves_executed": 7}}
    assert summary_counter(summary, "moves_executed") == 7.0
    assert summary_counter(summary, "missing") == 0.0
    assert summary_counter(None, "missing", default=3.0) == 3.0
