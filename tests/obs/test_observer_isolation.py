"""Observer fault isolation and the bounded trace ring buffer."""

from __future__ import annotations

import warnings

import pytest

from repro.api import NetworkSpec, RunSpec, run
from repro.graphs import generators
from repro.runtime.daemon import CentralDaemon
from repro.runtime.observers import (
    CallbackObserver,
    Observer,
    ObserverFailureWarning,
    TraceObserver,
    dispatch_safely,
)
from repro.runtime.scheduler import Scheduler
from repro.substrates.spanning_tree import BFSSpanningTree


class _Exploding(Observer):
    def __init__(self, hook: str = "on_step") -> None:
        self.calls = 0
        self._hook = hook

    def _boom(self, source, payload):
        self.calls += 1
        raise RuntimeError("observer bug")

    def __getattribute__(self, name):
        if name in ("on_step", "on_round", "on_event", "on_converged"):
            if name == object.__getattribute__(self, "_hook"):
                return object.__getattribute__(self, "_boom")
        return object.__getattribute__(self, name)


def test_dispatch_safely_warns_once_and_disables_the_failing_observer():
    seen: list[int] = []
    healthy = CallbackObserver(on_step=lambda source, record: seen.append(record))
    bad = _Exploding()
    observers: list[Observer] = [bad, healthy]
    with pytest.warns(ObserverFailureWarning, match="RuntimeError: observer bug"):
        dispatch_safely(observers, "on_step", None, 1)
    # Disabled: dropped from the list, never called again, no second warning.
    assert observers == [healthy]
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        dispatch_safely(observers, "on_step", None, 2)
    assert bad.calls == 1
    assert seen == [1, 2]


def test_dispatch_safely_lets_keyboard_interrupt_propagate():
    class Interrupting(Observer):
        def on_step(self, source, record):
            raise KeyboardInterrupt

    observers: list[Observer] = [Interrupting()]
    with pytest.raises(KeyboardInterrupt):
        dispatch_safely(observers, "on_step", None, 0)
    # Control-flow exceptions do not disable the observer.
    assert len(observers) == 1


def test_scheduler_survives_a_faulty_observer_and_still_converges():
    network = generators.ring(6)
    bad = _Exploding()
    scheduler = Scheduler(
        network,
        BFSSpanningTree(),
        daemon=CentralDaemon(),
        seed=1,
        observers=[bad],
    )
    with pytest.warns(ObserverFailureWarning):
        result = scheduler.run_until_legitimate(max_steps=200)
    assert result.converged
    assert bad.calls == 1
    # The scheduler's own built-in observers kept working throughout.
    assert scheduler.metrics.steps == result.steps


def test_faulty_observer_does_not_change_the_run_outcome():
    spec = RunSpec(network=NetworkSpec(family="ring", size=6, seed=1), seed=2)
    clean = run(spec)
    with pytest.warns(ObserverFailureWarning):
        watched = run(spec, observers=[_Exploding()])
    assert watched.row == clean.row


# ---------------------------------------------------------------------------
# Bounded tracing
# ---------------------------------------------------------------------------
def test_trace_observer_ring_buffer_keeps_the_newest_records():
    network = generators.random_connected(8, extra_edge_probability=0.3, seed=3)
    bounded = TraceObserver(max_records=5)
    unbounded = TraceObserver()
    scheduler = Scheduler(
        network,
        BFSSpanningTree(),
        daemon=CentralDaemon(),
        seed=2,
        observers=[bounded, unbounded],
    )
    scheduler.run_until_legitimate(max_steps=500)
    full = unbounded.trace.events()
    assert len(full) > 5
    assert bounded.trace.limit == 5
    assert bounded.trace.events() == full[-5:]
    assert bounded.trace.dropped == len(full) - 5
    assert unbounded.trace.dropped == 0


def test_trace_observer_max_records_takes_precedence_over_limit():
    assert TraceObserver(limit=100, max_records=3).trace.limit == 3
    assert TraceObserver(limit=7).trace.limit == 7
