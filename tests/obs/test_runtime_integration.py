"""Instrumentation threaded through the real engines: scheduler, shards, api.

These are the load-bearing guarantees of the observability layer:

* an uninstrumented run records nothing and its row is byte-identical to the
  pre-layer shape (no ``perf`` key, same hash);
* an instrumented run's phase timers account for the measured step wall time
  and its guard counters match what the core actually evaluated;
* a sharded run's per-worker counters sum to the single-process totals --
  every frontier node is re-evaluated by exactly one owner shard.
"""

from __future__ import annotations

import pytest

from repro.api import NetworkSpec, RunSpec, run
from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.obs import (
    Instrumentation,
    ListSpanSink,
    PHASE_ACTION_EXEC,
    PHASE_DAEMON_SELECT,
    PHASE_FRONTIER_EXCHANGE,
    PHASE_GUARD_EVAL,
    PHASE_OBSERVER_DISPATCH,
    SpanTracer,
    merge_summaries,
    phase_seconds,
    summary_counter,
)
from repro.runtime.daemon import CentralDaemon, make_daemon
from repro.runtime.scheduler import Scheduler
from repro.shard import ShardedScheduler
from repro.substrates.spanning_tree import BFSSpanningTree


def _run_instrumented(incremental: bool):
    network = generators.random_connected(10, extra_edge_probability=0.3, seed=5)
    instr = Instrumentation()
    scheduler = Scheduler(
        network,
        BFSSpanningTree(),
        daemon=CentralDaemon(),
        seed=3,
        incremental=incremental,
        instrumentation=instr,
    )
    result = scheduler.run_until_legitimate(max_steps=500)
    assert result.converged
    return result, instr.summary()


@pytest.mark.parametrize("incremental", [True, False])
def test_scheduler_phases_cover_step_wall_time(incremental):
    result, summary = _run_instrumented(incremental)
    step_wall = summary_counter(summary, "step_seconds")
    assert step_wall > 0.0
    assert summary_counter(summary, "steps_timed") == result.steps
    assert summary_counter(summary, "moves_executed") >= result.steps
    covered = phase_seconds(
        summary,
        PHASE_GUARD_EVAL,
        PHASE_DAEMON_SELECT,
        PHASE_ACTION_EXEC,
        PHASE_OBSERVER_DISPATCH,
    )
    # The acceptance bar is >= 90%; a unit-size run on a loaded box is
    # noisier than the bench, so pin a softer floor here (the bench asserts
    # the real one) plus the upper bound that catches double-counting.
    assert covered >= 0.5 * step_wall
    assert covered <= step_wall * 1.001
    for phase in (PHASE_GUARD_EVAL, PHASE_DAEMON_SELECT, PHASE_ACTION_EXEC):
        assert summary["phases"][phase]["count"] > 0
    assert summary_counter(summary, "guards_evaluated") > 0
    assert summary["gauges"]["enabled_set_size"]["count"] == result.steps


def test_instrumentation_does_not_perturb_the_execution():
    network = generators.random_connected(10, extra_edge_probability=0.3, seed=5)

    def outcome(instrumentation):
        scheduler = Scheduler(
            network,
            BFSSpanningTree(),
            daemon=CentralDaemon(),
            seed=3,
            incremental=True,
            instrumentation=instrumentation,
        )
        result = scheduler.run_until_legitimate(max_steps=500)
        return result.steps, scheduler.configuration

    assert outcome(None) == outcome(Instrumentation())


def test_uninstrumented_scheduler_records_nothing():
    network = generators.ring(6)
    scheduler = Scheduler(network, BFSSpanningTree(), daemon=CentralDaemon(), seed=1)
    scheduler.run_until_legitimate(max_steps=200)
    assert scheduler.instrumentation.enabled is False
    assert scheduler.instrumentation.summary() == {}


def test_scheduler_emits_run_round_step_spans_through_the_tracer():
    sink = ListSpanSink()
    tracer = SpanTracer(sink)
    instr = Instrumentation(tracer=tracer)
    network = generators.ring(6)
    scheduler = Scheduler(
        network,
        BFSSpanningTree(),
        daemon=CentralDaemon(),
        seed=1,
        instrumentation=instr,
    )
    scheduler.run_until_legitimate(max_steps=200)
    tracer.close()
    kinds = {record["kind"] for record in sink.records}
    assert {"round", "step"} <= kinds
    steps = [r for r in sink.records if r["kind"] == "step"]
    rounds = {r["span"] for r in sink.records if r["kind"] == "round"}
    assert all(record["parent"] in rounds for record in steps)


# ---------------------------------------------------------------------------
# Sharded aggregation
# ---------------------------------------------------------------------------
def _sharded_pair(n=12, seed=4, shards=3):
    network = generators.random_connected(n, extra_edge_probability=0.3, seed=seed)
    inline_instr = Instrumentation()
    plain = Scheduler(
        network,
        build_dftno(),
        daemon=make_daemon("distributed"),
        seed=seed,
        incremental=True,
        instrumentation=inline_instr,
    )
    sharded_instr = Instrumentation()
    sharded = ShardedScheduler(
        network,
        build_dftno(),
        daemon=make_daemon("distributed"),
        seed=seed,
        shards=shards,
        mode="inline",
        instrumentation=sharded_instr,
    )
    return plain, inline_instr, sharded, sharded_instr


def test_sharded_per_worker_guard_totals_match_single_process():
    # DFTNO circulates tokens forever, so run the identical deterministic
    # execution for a fixed number of steps on both engines.
    plain, inline_instr, sharded, sharded_instr = _sharded_pair()
    try:
        for _ in range(120):
            record_plain = plain.step()
            record_sharded = sharded.step()
            assert record_plain == record_sharded
            if record_plain is None:
                break
        inline_total = summary_counter(inline_instr.summary(), "guards_evaluated")
        summary = sharded_instr.summary()
        shard_summaries = list(summary["shards"].values())
        assert len(shard_summaries) == 3
        sharded_total = sum(
            summary_counter(s, "guards_evaluated") for s in shard_summaries
        )
        # Each frontier node is re-evaluated by exactly its owner shard, so
        # the per-worker counters partition the single-process total.
        assert sharded_total == inline_total
        merged = merge_summaries(*shard_summaries)
        assert summary_counter(merged, "guards_evaluated") == inline_total
    finally:
        sharded.close()


def test_sharded_run_reports_exchange_phases_and_frontier_bytes():
    _, _, sharded, instr = _sharded_pair()
    try:
        for _ in range(30):
            if sharded.step() is None:
                break
        summary = instr.summary()
        assert summary["phases"][PHASE_FRONTIER_EXCHANGE]["seconds"] > 0.0
        assert summary_counter(summary, "frontier_bytes_sent") > 0
        assert summary_counter(summary, "frontier_bytes_received") > 0
        assert summary_counter(summary, "frontier_messages") > 0
        for shard_summary in summary["shards"].values():
            assert shard_summary["phases"][PHASE_GUARD_EVAL]["seconds"] >= 0.0
            assert summary_counter(shard_summary, "guards_evaluated") > 0
    finally:
        sharded.close()


def test_sharded_fork_workers_report_perf_over_the_pipe():
    network = generators.random_connected(10, extra_edge_probability=0.3, seed=2)
    instr = Instrumentation()
    sharded = ShardedScheduler(
        network,
        build_dftno(),
        seed=2,
        shards=2,
        mode="fork",
        instrumentation=instr,
    )
    try:
        for _ in range(20):
            if sharded.step() is None:
                break
    finally:
        sharded.close()
    summary = instr.summary()
    assert set(summary.get("shards", {})) == {"0", "1"}
    total = sum(
        summary_counter(s, "guards_evaluated") for s in summary["shards"].values()
    )
    assert total > 0


# ---------------------------------------------------------------------------
# The api.run surface
# ---------------------------------------------------------------------------
def test_run_without_instrumentation_keeps_rows_and_hashes_stable():
    spec = RunSpec(network=NetworkSpec(family="ring", size=6, seed=1), seed=2)
    result = run(spec)
    assert result.perf is None
    assert "perf" not in result.row


def test_run_with_instrumentation_attaches_perf_without_changing_results():
    spec = RunSpec(network=NetworkSpec(family="ring", size=6, seed=1), seed=2)
    plain = run(spec)
    instrumented = run(spec, instrumentation=Instrumentation())
    assert instrumented.perf is not None
    assert instrumented.row["perf"] is instrumented.perf
    assert summary_counter(instrumented.perf, "steps_timed") > 0
    assert PHASE_GUARD_EVAL in instrumented.perf["phases"]
    # Everything but the perf attachment is identical.
    stripped = {k: v for k, v in instrumented.row.items() if k != "perf"}
    assert stripped == plain.row


@pytest.mark.parametrize(
    "spec",
    [
        RunSpec(
            engine="scenario",
            scenario="single_burst",
            network=NetworkSpec(size=8, seed=2),
            seed=3,
        ),
        RunSpec(engine="msgpass", network=NetworkSpec(family="complete", size=6)),
    ],
    ids=["scenario", "msgpass"],
)
def test_every_engine_reports_perf_when_instrumented(spec):
    result = run(spec, instrumentation=Instrumentation())
    assert result.perf is not None
    assert result.perf.get("counters") or result.perf.get("phases")
