"""Span tracing (sinks, parenting, env hookup) and the cProfile hook."""

from __future__ import annotations

import json

from repro.obs import (
    JsonlSpanSink,
    ListSpanSink,
    PROFILE_ENV,
    SpanTracer,
    TRACE_ENV,
    maybe_profile,
    tracer_from_env,
)


def test_spans_emit_flat_records_with_parent_links():
    sink = ListSpanSink()
    tracer = SpanTracer(sink)
    with tracer.span("run", kind="run", engine="scheduler") as run_span:
        with tracer.span("round", kind="round", parent=run_span, round=0) as round_span:
            with tracer.span("step", kind="step", parent=round_span, step=1):
                pass
    tracer.close()
    assert tracer.emitted == 3
    by_name = {record["name"]: record for record in sink.records}
    # Innermost closes (and therefore emits) first.
    assert [r["name"] for r in sink.records] == ["step", "round", "run"]
    assert by_name["run"]["parent"] is None
    assert by_name["round"]["parent"] == by_name["run"]["span"]
    assert by_name["step"]["parent"] == by_name["round"]["span"]
    assert by_name["run"]["engine"] == "scheduler"
    assert by_name["step"]["step"] == 1
    for record in sink.records:
        assert record["seconds"] >= 0.0
        assert record["t_offset"] >= 0.0


def test_span_close_is_idempotent_and_annotate_lands_in_the_record():
    sink = ListSpanSink()
    tracer = SpanTracer(sink)
    span = tracer.span("step", kind="step")
    span.annotate(moves=3)
    span.close()
    span.close()
    assert len(sink.records) == 1
    assert sink.records[0]["moves"] == 3


def test_jsonl_sink_appends_one_object_per_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = SpanTracer(JsonlSpanSink(str(path)))
    tracer.span("a").close()
    tracer.span("b").close()
    tracer.close()
    lines = path.read_text().splitlines()
    assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


def test_tracer_from_env_respects_the_variable(tmp_path):
    assert tracer_from_env({}) is None
    assert tracer_from_env({TRACE_ENV: "  "}) is None
    path = tmp_path / "trace.jsonl"
    tracer = tracer_from_env({TRACE_ENV: str(path)})
    assert tracer is not None
    tracer.span("run").close()
    tracer.close()
    assert json.loads(path.read_text())["name"] == "run"


def test_maybe_profile_is_inert_without_the_variable(tmp_path):
    with maybe_profile("label", environ={}) as profiler:
        assert profiler is None
    assert list(tmp_path.iterdir()) == []


def test_maybe_profile_dumps_a_profile_per_label(tmp_path):
    environ = {PROFILE_ENV: str(tmp_path)}
    with maybe_profile("scheduler-abc", environ=environ):
        sum(range(1000))
    assert (tmp_path / "scheduler-abc.prof").exists()
    # A second run with the same label must not clobber the first.
    with maybe_profile("scheduler-abc", environ=environ):
        sum(range(1000))
    profiles = {p.name for p in tmp_path.glob("*.prof")}
    assert profiles == {"scheduler-abc.prof", "scheduler-abc.1.prof"}


# ---------------------------------------------------------------------------
# Chrome-trace (Perfetto) export
# ---------------------------------------------------------------------------
def test_chrome_trace_maps_spans_to_complete_events(tmp_path):
    from repro.obs.spans import export_chrome_trace, load_span_records, to_chrome_trace

    path = tmp_path / "trace.spans.jsonl"
    tracer = SpanTracer(JsonlSpanSink(str(path)))
    with tracer.span("run", kind="run", engine="scheduler") as run_span:
        with tracer.span("step", kind="step", parent=run_span, step=3):
            sum(range(500))
    tracer.close()

    records = load_span_records(path)
    trace = to_chrome_trace(records)
    assert trace["displayTimeUnit"] == "ms"
    events = {event["name"]: event for event in trace["traceEvents"]}
    assert set(events) == {"run", "step"}
    for event in events.values():
        assert event["ph"] == "X" and event["pid"] == 1
        assert event["dur"] >= 0 and event["ts"] >= 0
    # Kinds land on fixed tracks so every export lines up the same way.
    assert events["run"]["tid"] == 1
    assert events["step"]["tid"] == 3
    assert events["step"]["args"]["step"] == 3
    assert events["step"]["args"]["parent"] == events["run"]["args"]["span"]

    destination = tmp_path / "trace.json"
    assert export_chrome_trace(path, destination) == 2
    assert json.loads(destination.read_text())["traceEvents"]


def test_chrome_trace_anomalies_become_instant_events():
    from repro.obs.spans import to_chrome_trace

    records = [
        {"span": 1, "parent": None, "name": "stall", "kind": "anomaly",
         "t_offset": 0.5, "seconds": 0.0, "detail": "no progress"},
    ]
    (event,) = to_chrome_trace(records)["traceEvents"]
    assert event["ph"] == "i" and event["s"] == "t"
    assert event["tid"] == 4  # the anomaly track
    assert event["ts"] == 500000.0
    assert event["args"]["detail"] == "no progress"


def test_chrome_trace_loader_skips_partial_lines(tmp_path):
    from repro.obs.spans import load_span_records

    path = tmp_path / "torn.spans.jsonl"
    path.write_text(
        '{"span":1,"parent":null,"name":"a","kind":"run","t_offset":0.0,"seconds":0.1}\n'
        '{"span":2,"parent":null,"na\n',
        encoding="utf-8",
    )
    records = load_span_records(path)
    assert [record["name"] for record in records] == ["a"]
