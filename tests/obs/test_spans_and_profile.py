"""Span tracing (sinks, parenting, env hookup) and the cProfile hook."""

from __future__ import annotations

import json

from repro.obs import (
    JsonlSpanSink,
    ListSpanSink,
    PROFILE_ENV,
    SpanTracer,
    TRACE_ENV,
    maybe_profile,
    tracer_from_env,
)


def test_spans_emit_flat_records_with_parent_links():
    sink = ListSpanSink()
    tracer = SpanTracer(sink)
    with tracer.span("run", kind="run", engine="scheduler") as run_span:
        with tracer.span("round", kind="round", parent=run_span, round=0) as round_span:
            with tracer.span("step", kind="step", parent=round_span, step=1):
                pass
    tracer.close()
    assert tracer.emitted == 3
    by_name = {record["name"]: record for record in sink.records}
    # Innermost closes (and therefore emits) first.
    assert [r["name"] for r in sink.records] == ["step", "round", "run"]
    assert by_name["run"]["parent"] is None
    assert by_name["round"]["parent"] == by_name["run"]["span"]
    assert by_name["step"]["parent"] == by_name["round"]["span"]
    assert by_name["run"]["engine"] == "scheduler"
    assert by_name["step"]["step"] == 1
    for record in sink.records:
        assert record["seconds"] >= 0.0
        assert record["t_offset"] >= 0.0


def test_span_close_is_idempotent_and_annotate_lands_in_the_record():
    sink = ListSpanSink()
    tracer = SpanTracer(sink)
    span = tracer.span("step", kind="step")
    span.annotate(moves=3)
    span.close()
    span.close()
    assert len(sink.records) == 1
    assert sink.records[0]["moves"] == 3


def test_jsonl_sink_appends_one_object_per_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = SpanTracer(JsonlSpanSink(str(path)))
    tracer.span("a").close()
    tracer.span("b").close()
    tracer.close()
    lines = path.read_text().splitlines()
    assert [json.loads(line)["name"] for line in lines] == ["a", "b"]


def test_tracer_from_env_respects_the_variable(tmp_path):
    assert tracer_from_env({}) is None
    assert tracer_from_env({TRACE_ENV: "  "}) is None
    path = tmp_path / "trace.jsonl"
    tracer = tracer_from_env({TRACE_ENV: str(path)})
    assert tracer is not None
    tracer.span("run").close()
    tracer.close()
    assert json.loads(path.read_text())["name"] == "run"


def test_maybe_profile_is_inert_without_the_variable(tmp_path):
    with maybe_profile("label", environ={}) as profiler:
        assert profiler is None
    assert list(tmp_path.iterdir()) == []


def test_maybe_profile_dumps_a_profile_per_label(tmp_path):
    environ = {PROFILE_ENV: str(tmp_path)}
    with maybe_profile("scheduler-abc", environ=environ):
        sum(range(1000))
    assert (tmp_path / "scheduler-abc.prof").exists()
    # A second run with the same label must not clobber the first.
    with maybe_profile("scheduler-abc", environ=environ):
        sum(range(1000))
    profiles = {p.name for p in tmp_path.glob("*.prof")}
    assert profiles == {"scheduler-abc.prof", "scheduler-abc.1.prof"}
