"""Convergence telemetry: sampling, heat maps, decimation, API embedding."""

from __future__ import annotations

import json

import pytest

from repro.api import NetworkSpec, RunSpec, run
from repro.graphs import generators
from repro.obs import (
    ConvergenceTelemetryObserver,
    enabled_trajectory,
    guard_heat_table,
)
from repro.runtime.daemon import make_daemon
from repro.runtime.scheduler import Scheduler
from repro.shard import ShardedScheduler
from repro.substrates.spanning_tree import BFSSpanningTree


def _observed_run(n: int = 12, seed: int = 7, stride: int = 4, **kwargs):
    network = generators.random_connected(n, seed=1)
    observer = ConvergenceTelemetryObserver(stride=stride, **kwargs)
    scheduler = Scheduler(
        network,
        BFSSpanningTree(),
        daemon=make_daemon("central"),
        seed=seed,
        observers=(observer,),
    )
    result = scheduler.run_until_legitimate(max_steps=8 * n * n)
    return observer, result


def test_samples_follow_the_stride_and_drain():
    observer, result = _observed_run(stride=4)
    assert result.converged
    snapshot = observer.snapshot()
    steps = [sample[0] for sample in snapshot["samples"]]
    assert steps[0] == 0
    assert all(step % 4 == 0 for step in steps)
    assert steps == sorted(steps)
    trajectory = enabled_trajectory(snapshot)
    assert trajectory, "scheduler runs must expose the enabled set"
    # A stabilizing run drains the enabled set: the last observation is
    # strictly below the first (and legitimacy flips to 1 by the end).
    assert trajectory[-1][1] < trajectory[0][1]
    legitimate_index = snapshot["columns"].index("legitimate")
    assert snapshot["samples"][0][legitimate_index] in (0, 1)
    # run_until_legitimate leaves the convergence notification to the
    # measurement harness; fired explicitly, it stamps the converged step.
    assert observer.converged_step is None
    assert snapshot["converged_step"] is None


def test_guard_heat_and_writes_accumulate_per_move():
    observer, _ = _observed_run()
    snapshot = observer.snapshot()
    assert snapshot["guard_heat"], "a converging run fires guards"
    for key, count in snapshot["guard_heat"].items():
        assert ":" in key and count > 0
    total_moves = sum(snapshot["guard_heat"].values())
    table = guard_heat_table(snapshot)
    assert [row["fires"] for row in table] == sorted(
        (row["fires"] for row in table), reverse=True
    )
    assert sum(row["fires"] for row in table) == total_moves
    assert len(guard_heat_table(snapshot, limit=2)) == 2
    # Writes-per-node keys are stringified for JSON stability.
    assert snapshot["writes_per_node"]
    assert all(isinstance(node, str) for node in snapshot["writes_per_node"])


def test_decimation_bounds_the_series():
    observer, _ = _observed_run(n=16, stride=1, max_samples=8)
    assert len(observer.samples) < 8
    assert observer.stride > 1, "decimation must double the stride"
    snapshot = observer.snapshot()
    assert snapshot["stride"] == observer.stride
    steps = [sample[0] for sample in snapshot["samples"]]
    assert steps == sorted(steps)


def test_snapshot_round_trips_byte_stable():
    observer, _ = _observed_run()
    snapshot = observer.snapshot()
    encoded = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    decoded = json.loads(encoded)
    assert decoded == snapshot
    assert json.dumps(decoded, sort_keys=True, separators=(",", ":")) == encoded


def test_track_legitimacy_off_skips_the_predicate():
    observer, _ = _observed_run(track_legitimacy=False)
    index = observer.snapshot()["columns"].index("legitimate")
    assert all(sample[index] is None for sample in observer.samples)


def test_sharded_run_records_shard_moves():
    network = generators.random_connected(12, seed=1)
    observer = ConvergenceTelemetryObserver(stride=4)
    scheduler = ShardedScheduler(
        network,
        BFSSpanningTree(),
        daemon=make_daemon("central"),
        seed=7,
        shards=2,
        mode="inline",
        observers=(observer,),
    )
    result = scheduler.run_until_legitimate(max_steps=2000)
    assert result.converged
    snapshot = observer.snapshot()
    shard_moves = snapshot.get("shard_moves")
    assert shard_moves and set(shard_moves) <= {"0", "1"}
    assert sum(shard_moves.values()) == sum(snapshot["guard_heat"].values())


def test_api_run_embeds_telemetry_and_health():
    spec = RunSpec(
        engine="scheduler",
        protocol="dftno",
        network=NetworkSpec(family="random_connected", size=10, seed=3),
        daemon="distributed",
        seed=5,
    )
    bare = run(spec)
    assert "telemetry" not in bare.row and bare.telemetry is None
    assert "health" not in bare.row and bare.health is None

    monitored = run(spec, telemetry=8, health=True)
    assert monitored.row["telemetry"] is monitored.telemetry
    assert monitored.row["health"] is monitored.health
    assert monitored.telemetry["samples"]
    # The measurement harness fires the convergence notification.
    assert monitored.telemetry["converged_step"] is not None
    assert monitored.health["anomalies"] == []
    # The observers never perturb the measured execution.
    for key in ("overlay_steps", "total_steps", "converged"):
        if key in bare.row:
            assert monitored.row[key] == bare.row[key], key

    with pytest.raises(TypeError):
        run(spec, telemetry="yes")
    with pytest.raises(TypeError):
        run(spec, health=3.5)


def test_api_run_accepts_prebuilt_observers():
    spec = RunSpec(
        engine="scheduler",
        protocol="stno-bfs",
        network=NetworkSpec(family="random_connected", size=8, seed=2),
        daemon="central",
        seed=4,
    )
    observer = ConvergenceTelemetryObserver(stride=2)
    result = run(spec, telemetry=observer)
    assert result.telemetry == observer.snapshot()
    assert result.telemetry["samples"]


def test_events_recorded_from_scenarios():
    spec = RunSpec(
        engine="scenario",
        protocol="dftno",
        network=NetworkSpec(family="random_connected", size=8, seed=2),
        daemon="distributed",
        seed=4,
        scenario="single_burst",
    )
    result = run(spec, telemetry=4)
    events = result.telemetry.get("events")
    assert events, "scenario runs emit events into the telemetry blob"
    assert all(len(event) == 2 for event in events)


def test_parameter_validation():
    with pytest.raises(ValueError):
        ConvergenceTelemetryObserver(stride=0)
    with pytest.raises(ValueError):
        ConvergenceTelemetryObserver(max_samples=1)
