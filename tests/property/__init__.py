"""Test package."""
