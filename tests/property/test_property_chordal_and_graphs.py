"""Property-based tests (hypothesis) for chordal arithmetic and graph structures."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.chordal import ChordalOrientation, chordal_edge_label, inverse_label
from repro.graphs import generators, io
from repro.graphs.network import RootedNetwork
from repro.graphs.properties import bfs_distances, is_spanning_tree, is_tree
from repro.substrates.spanning_tree import dfs_tree_parents
from repro.substrates.token_circulation import dfs_preorder


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def random_connected_networks(draw, max_nodes: int = 12):
    """A random connected rooted network (random spanning tree + extra edges)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges: set[tuple[int, int]] = set()
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.add((parent, node))
    extra_count = draw(st.integers(min_value=0, max_value=min(6, n * (n - 1) // 2)))
    for _ in range(extra_count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    root = draw(st.integers(min_value=0, max_value=n - 1))
    return RootedNetwork(n, sorted(edges), root=root)


@st.composite
def names_and_modulus(draw):
    modulus = draw(st.integers(min_value=2, max_value=64))
    a = draw(st.integers(min_value=0, max_value=modulus - 1))
    b = draw(st.integers(min_value=0, max_value=modulus - 1))
    return a, b, modulus


# ----------------------------------------------------------------------
# Chordal arithmetic invariants (Section 2.2)
# ----------------------------------------------------------------------
@given(names_and_modulus())
def test_chordal_label_is_in_range(data):
    a, b, modulus = data
    assert 0 <= chordal_edge_label(a, b, modulus) < modulus


@given(names_and_modulus())
def test_edge_symmetry_inverse_modulo_n(data):
    a, b, modulus = data
    forward = chordal_edge_label(a, b, modulus)
    backward = chordal_edge_label(b, a, modulus)
    assert backward == inverse_label(forward, modulus)
    assert (forward + backward) % modulus == 0


@given(names_and_modulus())
def test_label_recovers_neighbor_name(data):
    a, b, modulus = data
    label = chordal_edge_label(a, b, modulus)
    assert (a - label) % modulus == b


@settings(max_examples=40, deadline=None)
@given(random_connected_networks())
def test_orientation_from_unique_names_is_always_valid(network):
    names = {node: node for node in network.nodes()}
    orientation = ChordalOrientation.from_names(network, names)
    assert orientation.is_valid(network)
    # Local orientation: labels at every processor are pairwise distinct.
    for node in network.nodes():
        labels = list(orientation.edge_labels[node].values())
        assert len(labels) == len(set(labels))


@settings(max_examples=40, deadline=None)
@given(random_connected_networks(), st.randoms(use_true_random=False))
def test_orientation_with_permuted_names_is_valid(network, rnd):
    names = list(network.nodes())
    rnd.shuffle(names)
    mapping = {node: names[index] for index, node in enumerate(network.nodes())}
    orientation = ChordalOrientation.from_names(network, mapping)
    assert orientation.is_valid(network)


# ----------------------------------------------------------------------
# Graph invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(random_connected_networks())
def test_generated_networks_are_connected(network):
    distances = bfs_distances(network)
    assert len(distances) == network.n


@settings(max_examples=50, deadline=None)
@given(random_connected_networks())
def test_dfs_preorder_is_a_permutation_starting_at_root(network):
    order = dfs_preorder(network)
    assert order[0] == network.root
    assert sorted(order) == list(network.nodes())


@settings(max_examples=50, deadline=None)
@given(random_connected_networks())
def test_dfs_preorder_parents_precede_children(network):
    order = dfs_preorder(network)
    position = {node: index for index, node in enumerate(order)}
    parents = dfs_tree_parents(network)
    assert is_spanning_tree(network, parents)
    for node, parent in parents.items():
        if parent is not None:
            assert position[parent] < position[node]
            assert network.has_edge(parent, node)


@settings(max_examples=50, deadline=None)
@given(random_connected_networks())
def test_network_dict_round_trip(network):
    assert io.from_dict(io.to_dict(network)) == network


@settings(max_examples=50, deadline=None)
@given(random_connected_networks())
def test_network_adjacency_round_trip(network):
    rebuilt = io.from_adjacency_text(io.to_adjacency_text(network))
    assert rebuilt.edges() == network.edges()
    assert rebuilt.root == network.root


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=2 ** 20))
def test_random_trees_are_trees(n, seed):
    network = generators.random_tree(n, seed=seed)
    assert is_tree(network)
    assert len(bfs_distances(network)) == n
