"""Property-based tests: self-stabilization of the protocol stacks.

These are the empirical counterparts of Definition 2.1.2: from *arbitrary*
configurations drawn by hypothesis (arbitrary topology, arbitrary variable
values, randomized daemon), the protocols must converge to their legitimacy
predicates, and the orientation they produce must satisfy SP1/SP2.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.dftno import build_dftno
from repro.core.specification import VAR_NAME, OrientationSpecification
from repro.core.stno import build_stno
from repro.graphs.network import RootedNetwork
from repro.runtime.daemon import CentralDaemon, DistributedDaemon, SynchronousDaemon
from repro.runtime.scheduler import Scheduler
from repro.substrates.spanning_tree import BFSSpanningTree
from repro.substrates.token_circulation import DepthFirstTokenCirculation, dfs_preorder

COMMON_SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def small_networks(draw, max_nodes: int = 8):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges: set[tuple[int, int]] = set()
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.add((parent, node))
    extra = draw(st.integers(min_value=0, max_value=4))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return RootedNetwork(n, sorted(edges), root=0)


def daemons():
    return st.sampled_from(["central", "distributed", "synchronous"])


def make_daemon(kind: str):
    return {
        "central": lambda: CentralDaemon("random"),
        "distributed": lambda: DistributedDaemon(),
        "synchronous": lambda: SynchronousDaemon(),
    }[kind]()


# ----------------------------------------------------------------------
# Token circulation substrate
# ----------------------------------------------------------------------
@settings(**COMMON_SETTINGS)
@given(small_networks(), st.integers(min_value=0, max_value=2 ** 16), daemons())
def test_token_circulation_stabilizes_from_any_state(network, seed, daemon_kind):
    protocol = DepthFirstTokenCirculation()
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon_kind), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=40_000)
    assert result.converged
    assert len(protocol.token_holders(network, result.configuration)) <= 1


# ----------------------------------------------------------------------
# BFS spanning tree substrate
# ----------------------------------------------------------------------
@settings(**COMMON_SETTINGS)
@given(small_networks(), st.integers(min_value=0, max_value=2 ** 16), daemons())
def test_bfs_tree_stabilizes_from_any_state(network, seed, daemon_kind):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon_kind), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=40_000)
    assert result.converged
    assert protocol.is_spanning_tree(network, result.configuration)


# ----------------------------------------------------------------------
# DFTNO (convergence + the names it converges to)
# ----------------------------------------------------------------------
def settle_window(network) -> int:
    """Steps spanning at least one full token wave (see orientation._run)."""
    return 4 * (network.n + network.num_edges()) + 8


@settings(**COMMON_SETTINGS)
@given(small_networks(), st.integers(min_value=0, max_value=2 ** 16), daemons())
def test_dftno_orientation_from_any_state(network, seed, daemon_kind):
    protocol = build_dftno()
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon_kind), seed=seed)
    result = scheduler.run_until_legitimate(
        max_steps=120_000, confirm_steps=settle_window(network)
    )
    assert result.converged
    specification = OrientationSpecification()
    assert specification.holds(network, result.configuration)
    expected = {node: index for index, node in enumerate(dfs_preorder(network))}
    names = {node: result.configuration.get(node, VAR_NAME) for node in network.nodes()}
    assert names == expected


@settings(**COMMON_SETTINGS)
@given(small_networks(), st.integers(min_value=0, max_value=2 ** 16))
def test_dftno_closure_after_stabilization(network, seed):
    protocol = build_dftno()
    scheduler = Scheduler(network, protocol, daemon=DistributedDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(
        max_steps=120_000, confirm_steps=settle_window(network)
    )
    assert result.converged
    specification = OrientationSpecification()
    names_before = {node: scheduler.configuration.get(node, VAR_NAME) for node in network.nodes()}
    for _ in range(10 * network.n):
        if scheduler.step() is None:
            break
    names_after = {node: scheduler.configuration.get(node, VAR_NAME) for node in network.nodes()}
    assert names_before == names_after
    assert specification.holds(network, scheduler.configuration)


# ----------------------------------------------------------------------
# STNO (both substrates)
# ----------------------------------------------------------------------
@settings(**COMMON_SETTINGS)
@given(small_networks(), st.integers(min_value=0, max_value=2 ** 16), daemons())
def test_stno_bfs_orientation_from_any_state(network, seed, daemon_kind):
    protocol = build_stno(tree="bfs")
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon_kind), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=80_000)
    assert result.converged
    assert OrientationSpecification().holds(network, result.configuration)


@settings(**COMMON_SETTINGS)
@given(small_networks(max_nodes=7), st.integers(min_value=0, max_value=2 ** 16))
def test_stno_dfs_names_equal_dftno_names(network, seed):
    stno = build_stno(tree="dfs")
    scheduler = Scheduler(network, stno, daemon=DistributedDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(
        max_steps=160_000, confirm_steps=settle_window(network)
    )
    assert result.converged
    expected = {node: index for index, node in enumerate(dfs_preorder(network))}
    names = {node: result.configuration.get(node, VAR_NAME) for node in network.nodes()}
    assert names == expected
