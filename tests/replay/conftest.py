"""Shared fixtures for the flight-recorder / replay suite."""

from __future__ import annotations

import pytest

from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.obs import FlightRecorder
from repro.runtime.daemon import make_daemon
from repro.runtime.scheduler import Scheduler


def record_run(
    path,
    protocol=None,
    daemon: str = "distributed",
    n: int = 6,
    seed: int = 11,
    max_steps: int = 120,
    spec=None,
):
    """Record a small run to ``path``; returns (scheduler, live step records)."""
    recorder = FlightRecorder(path, spec=spec)
    scheduler = Scheduler(
        generators.random_connected(n, extra_edge_probability=0.3, seed=seed),
        protocol if protocol is not None else build_dftno(),
        daemon=make_daemon(daemon),
        seed=seed,
        observers=(recorder,),
    )
    records = []
    for _ in range(max_steps):
        record = scheduler.step()
        if record is None:
            break
        records.append(record)
    recorder.close()
    return scheduler, records


@pytest.fixture
def recorded_log(tmp_path):
    """A clean recorded dftno run: (log path, scheduler, live records)."""
    path = tmp_path / "run.flight.jsonl"
    scheduler, records = record_run(path)
    return path, scheduler, records
