"""``repro-replay`` CLI: show / verify / bisect exit codes and output."""

from __future__ import annotations

import json

import pytest

from repro.replay.cli import main

from tests.replay.conftest import record_run


def _tamper(path, step, mutate):
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, raw in enumerate(lines):
        entry = json.loads(raw)
        if entry.get("type") == "step" and entry["core"]["step"] == step:
            mutate(entry)
            lines[index] = json.dumps(entry, separators=(",", ":"))
            break
    else:
        raise AssertionError(f"no step {step} entry in {path}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _phantom(entry):
    entry["core"]["executed"].append([999, "Phantom"])


def test_show_prints_steps_with_per_node_diffs(recorded_log, capsys):
    path, _, _ = recorded_log
    assert main(["show", str(path), "--limit", "3"]) == 0
    out = capsys.readouterr().out
    assert "protocol=dftno" in out
    assert "initial configuration fingerprint" in out
    assert "step 0 (round 0)" in out
    assert "->" in out  # at least one old -> new diff
    assert "final: steps=" in out


def test_show_honors_the_step_range(recorded_log, capsys):
    path, _, records = recorded_log
    assert len(records) > 4
    assert main(["show", str(path), "--start", "2", "--end", "3"]) == 0
    out = capsys.readouterr().out
    assert "step 2 (round" in out and "step 3 (round" in out
    assert "step 0 (round" not in out and "step 4 (round" not in out


def test_verify_exits_zero_on_a_clean_log(recorded_log, capsys):
    path, _, records = recorded_log
    assert main(["verify", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"verified: {len(records)} steps" in out
    assert "byte-identically" in out


def test_verify_exits_one_on_a_tampered_log(recorded_log, capsys):
    path, _, _ = recorded_log
    _tamper(path, 3, _phantom)
    assert main(["verify", str(path)]) == 1
    err = capsys.readouterr().err
    assert "divergence at step 3" in err
    assert "verify FAILED after 3 matching steps" in err


def test_bisect_exits_one_when_there_is_nothing_to_bisect(recorded_log, capsys):
    path, _, records = recorded_log
    assert main(["bisect", str(path)]) == 1
    out = capsys.readouterr().out
    assert "nothing to bisect" in out
    assert f"{len(records)} steps verified" in out


def test_bisect_localizes_a_corrupt_entry_to_its_exact_step(recorded_log, capsys):
    path, _, _ = recorded_log
    _tamper(path, 7, _phantom)
    assert main(["bisect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "first divergence localized to step 7:" in out
    # In-log damage is a fingerprint mismatch at the damaged entry, named
    # by its file:line position.
    assert "is corrupt" in out
    assert f"{path}:" in out


def test_bisect_reports_the_earliest_of_multiple_damaged_entries(recorded_log, capsys):
    path, _, _ = recorded_log
    _tamper(path, 9, _phantom)
    _tamper(path, 4, _phantom)
    assert main(["bisect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "first divergence localized to step 4:" in out
    assert "step 9" not in out.split("localized")[1].splitlines()[0]


def test_bisect_localizes_a_live_divergence_with_a_matching_stamp(
    recorded_log, capsys
):
    # Re-stamp the tampered entry so the fingerprint scan passes and only
    # the live replay can catch it -- the "recorded from a buggy engine"
    # shape rather than hand-edited damage.
    from repro.obs.recorder import fingerprint

    path, _, _ = recorded_log

    def phantom_restamped(entry):
        _phantom(entry)
        entry["fp"] = fingerprint(entry["core"])

    _tamper(path, 5, phantom_restamped)
    assert main(["bisect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "first divergence localized to step 5:" in out
    assert "first live divergence" in out


def test_missing_log_is_a_usage_error(tmp_path, capsys):
    code = main(["verify", str(tmp_path / "missing.flight.jsonl")])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_structurally_damaged_log_is_a_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.flight.jsonl"
    bad.write_text('{"type":"header","version":1}\n{broken\n', encoding="utf-8")
    for command in ("show", "verify", "bisect"):
        assert main([command, str(bad)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_console_entry_point_is_wired():
    from pathlib import Path

    text = (Path(__file__).resolve().parents[2] / "setup.py").read_text(
        encoding="utf-8"
    )
    assert "repro-replay" in text and "repro.replay.cli:main" in text


@pytest.mark.parametrize("command", ["show", "verify", "bisect"])
def test_module_invocation_smoke(command, recorded_log):
    # python -m repro.replay <cmd> is what CI drives; exercise the package
    # __main__ path in-process.
    import repro.replay.__main__ as entry

    assert entry.main is main
