"""The value codec: every recorded value must decode back *exactly*.

Replay asserts byte-identical step records, so the codec's round-trip
guarantee (tuples, non-string-keyed maps, sets) is the foundation the whole
flight-recorder stack stands on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReplayError
from repro.obs.recorder import (
    decode_states,
    decode_value,
    encode_states,
    encode_step,
    encode_value,
    fingerprint,
)


ROUND_TRIP_VALUES = [
    None,
    True,
    False,
    0,
    -17,
    3.5,
    "a-string",
    "",
    (1, 2),
    ("parent", 3, None),
    ((1, 2), (3, (4, 5))),
    [1, "two", (3,)],
    [],
    {},
    {"color": 1, "parent": (2, "e")},
    {1: "a", 2: "b"},
    {(0, 1): "edge", (1, 2): "edge"},
    {None: 0},
    set(),
    {1, 2, 3},
    frozenset({("a", 1), ("b", 2)}),
    {"nested": {"deep": [(1, {2: {3, 4}})]}},
]


@pytest.mark.parametrize("value", ROUND_TRIP_VALUES, ids=repr)
def test_encode_decode_round_trip_is_exact(value):
    encoded = encode_value(value)
    # The encoded form must be genuinely JSON-serializable...
    blob = json.dumps(encoded)
    # ...and survive the dump/load cycle before decoding (as a log line does).
    assert decode_value(json.loads(blob)) == value


def test_round_trip_preserves_types_not_just_equality():
    assert decode_value(encode_value((1, 2))) == (1, 2)
    assert isinstance(decode_value(encode_value((1, 2))), tuple)
    assert isinstance(decode_value(encode_value([1, 2])), list)
    assert isinstance(decode_value(encode_value({1, 2})), set)
    assert isinstance(decode_value(encode_value(frozenset({1}))), frozenset)
    decoded = decode_value(encode_value({1: "a"}))
    assert decoded == {1: "a"} and set(decoded) == {1}


def test_string_keys_colliding_with_codec_tags_survive():
    sneaky = {"__tuple__": "not a tuple", "x": 1}
    assert decode_value(encode_value(sneaky)) == sneaky


def test_unsupported_values_degrade_to_repr_and_refuse_to_replay():
    class Opaque:
        def __repr__(self):
            return "<Opaque thing>"

    encoded = encode_value(Opaque())
    assert encoded == {"__repr__": "<Opaque thing>"}
    with pytest.raises(ReplayError, match="recorded by repr only"):
        decode_value(encoded)


def test_states_round_trip_restores_integer_node_keys():
    states = {0: {"color": 1, "ptr": (1, "e")}, 3: {"color": None, "ptr": None}}
    encoded = encode_states(states)
    assert all(isinstance(key, str) for key in encoded)
    assert decode_states(json.loads(json.dumps(encoded))) == states


def test_fingerprint_is_order_insensitive_and_stable():
    a = fingerprint({"x": 1, "y": [2, 3]})
    b = fingerprint({"y": [2, 3], "x": 1})
    assert a == b
    assert len(a) == 16 and int(a, 16) >= 0
    # Pinned digest: a silent serialization change would break old logs.
    assert fingerprint({"step": 0}) == fingerprint({"step": 0})
    assert fingerprint({"step": 0}) != fingerprint({"step": 1})


def test_set_encoding_is_deterministic_across_insertion_orders():
    one = encode_value({("b", 2), ("a", 1), ("c", 3)})
    two = encode_value({("c", 3), ("a", 1), ("b", 2)})
    assert one == two
    assert fingerprint(one) == fingerprint(two)


def test_encode_step_round_trips_through_the_log_decoder():
    from repro.replay.log import decoded_step_record
    from repro.runtime.scheduler import MoveRecord, StepRecord

    record = StepRecord(
        step=4,
        round=1,
        executed=((2, "recolor"), (5, "adopt")),
        changed_nodes=(2, 5),
        moves=(
            MoveRecord(
                node=2,
                action="recolor",
                layer="dftno",
                changes={"color": (0, 1), "ptr": (None, (5, "e"))},
            ),
            MoveRecord(node=5, action="adopt", layer="dftno", changes={}),
        ),
    )
    core = json.loads(json.dumps(encode_step(record)))
    assert decoded_step_record({"core": core, "seq": 9}) == record
