"""Log structure: what the recorder writes, the parser must read back.

These tests pin the on-disk contract -- entry shapes, causal sequencing,
fingerprint stamps -- independent of replay, so a log written today stays
debuggable even if the replay engine evolves.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunSpec
from repro.errors import ReplayError
from repro.obs.recorder import SCHEMA_VERSION, fingerprint
from repro.replay.log import FlightLog, decoded_step_record

from tests.replay.conftest import record_run


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


def test_log_opens_with_header_then_init_then_steps(recorded_log):
    path, scheduler, records = recorded_log
    lines = _lines(path)
    assert [entry["type"] for entry in lines[:2]] == ["header", "init"]
    assert lines[0]["version"] == SCHEMA_VERSION
    assert lines[0]["protocol"] == "dftno"
    assert lines[0]["daemon"].startswith("distributed")
    assert lines[0]["network"]["num_nodes"] == scheduler.network.n
    assert lines[-1]["type"] == "final"
    assert lines[-1]["steps"] == len(records)
    step_entries = [entry for entry in lines if entry["type"] == "step"]
    assert len(step_entries) == len(records)


def test_entries_carry_a_strictly_increasing_causal_sequence(recorded_log):
    path, _, _ = recorded_log
    lines = _lines(path)
    seqs = [entry["seq"] for entry in lines]
    assert seqs == list(range(len(lines)))
    # file:line = seq + 1 is what bisect prints; pin it.
    for lineno, entry in enumerate(lines, start=1):
        assert entry["seq"] + 1 == lineno


def test_every_step_entry_fingerprint_matches_its_body(recorded_log):
    path, _, _ = recorded_log
    steps = [entry for entry in _lines(path) if entry["type"] == "step"]
    assert steps, "run recorded no steps"
    for entry in steps:
        assert entry["fp"] == fingerprint(entry["core"])


def test_decoded_step_records_equal_the_live_stream(recorded_log):
    path, _, records = recorded_log
    log = FlightLog.load(path)
    decoded = [decoded_step_record(entry) for entry in log.steps()]
    assert decoded == records


def test_initial_states_decode_to_the_recorded_configuration(recorded_log):
    path, _, _ = recorded_log
    log = FlightLog.load(path)
    states = log.initial_states()
    assert set(states) == set(range(log.header["network"]["num_nodes"]))
    assert log.init["fingerprint"] == fingerprint(log.init["config"])
    assert log.initial_frozen() == ()


def test_header_records_the_spec_when_given_one(tmp_path):
    spec = RunSpec(protocol="dftno", seed=11, record=True)
    path = tmp_path / "spec.flight.jsonl"
    record_run(path, spec=spec, max_steps=5)
    log = FlightLog.load(path)
    assert log.spec_dict is not None
    assert log.spec_dict["protocol"] == "dftno"
    assert log.header["spec_hash"] == spec.canonical_hash
    # record= is hash-excluded: the same run without recording hashes the same.
    assert RunSpec(protocol="dftno", seed=11).canonical_hash == spec.canonical_hash


def test_raw_runs_have_no_spec_but_still_describe_themselves(recorded_log):
    path, _, _ = recorded_log
    log = FlightLog.load(path)
    assert log.spec_dict is None
    text = log.describe()
    assert "protocol=dftno" in text and "steps=" in text


def test_mutations_are_recorded_through_the_scheduler_seams(tmp_path):
    path = tmp_path / "mutated.flight.jsonl"
    from repro.core.dftno import build_dftno
    from repro.graphs import generators
    from repro.obs import FlightRecorder
    from repro.runtime.daemon import make_daemon
    from repro.runtime.scheduler import Scheduler

    recorder = FlightRecorder(path)
    scheduler = Scheduler(
        generators.random_connected(6, extra_edge_probability=0.3, seed=4),
        build_dftno(),
        daemon=make_daemon("distributed"),
        seed=4,
        observers=(recorder,),
    )
    for _ in range(3):
        scheduler.step()
    scheduler.freeze([0, 1])
    scheduler.step()
    scheduler.unfreeze([0, 1])
    for _ in range(3):
        scheduler.step()
    recorder.close()

    kinds = [
        entry.get("kind")
        for entry in _lines(path)
        if entry["type"] == "mutation"
    ]
    assert kinds == ["freeze", "unfreeze"]
    freeze = next(e for e in _lines(path) if e.get("kind") == "freeze")
    assert freeze["nodes"] == [0, 1]


def test_parser_rejects_structural_damage(tmp_path):
    with pytest.raises(ReplayError, match="does not exist"):
        FlightLog.load(tmp_path / "missing.flight.jsonl")

    empty = tmp_path / "empty.flight.jsonl"
    empty.write_text("", encoding="utf-8")
    with pytest.raises(ReplayError, match="no header"):
        FlightLog.load(empty)

    garbage = tmp_path / "garbage.flight.jsonl"
    garbage.write_text('{"type":"header","version":1}\n{broken\n', encoding="utf-8")
    with pytest.raises(ReplayError, match=r"garbage\.flight\.jsonl:2: not valid JSON"):
        FlightLog.load(garbage)

    orphan = tmp_path / "orphan.flight.jsonl"
    orphan.write_text('{"type":"init","config":{}}\n', encoding="utf-8")
    with pytest.raises(ReplayError, match="init before header"):
        FlightLog.load(orphan)

    future = tmp_path / "future.flight.jsonl"
    future.write_text('{"type":"header","version":999}\n', encoding="utf-8")
    with pytest.raises(ReplayError, match="schema version"):
        FlightLog.load(future)


def test_parser_reads_damaged_content_without_judging_it(recorded_log):
    # A *divergent* log is readable: content damage is replay's verdict.
    path, _, _ = recorded_log
    lines = path.read_text(encoding="utf-8").splitlines()
    entry = json.loads(lines[2])
    assert entry["type"] == "step"
    entry["core"]["executed"].append([999, "Phantom"])
    lines[2] = json.dumps(entry, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    log = FlightLog.load(path)  # must not raise
    assert log.step_count() > 0


def test_recorder_survives_a_second_run_start(tmp_path, recorded_log):
    from repro.obs import FlightRecorder
    from repro.core.dftno import build_dftno
    from repro.graphs import generators
    from repro.runtime.daemon import make_daemon
    from repro.runtime.scheduler import Scheduler

    path = tmp_path / "double.flight.jsonl"
    recorder = FlightRecorder(path)
    network = generators.random_connected(5, extra_edge_probability=0.3, seed=2)
    first = Scheduler(
        network, build_dftno(), daemon=make_daemon("distributed"), seed=2,
        observers=(recorder,),
    )
    first.step()
    # A second engine construction must not interleave a second header.
    Scheduler(
        network, build_dftno(), daemon=make_daemon("distributed"), seed=3,
        observers=(recorder,),
    )
    recorder.close()
    lines = _lines(path)
    assert sum(1 for e in lines if e["type"] == "header") == 1
    assert any(e["type"] == "note" for e in lines)
