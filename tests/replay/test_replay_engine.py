"""The replay engine: deterministic re-execution, verified in lockstep."""

from __future__ import annotations

import json
import random

import pytest

from repro.api import run
from repro.core.dftno import build_dftno
from repro.errors import ReplayError
from repro.graphs import generators
from repro.obs import FlightRecorder
from repro.replay import ReplayDaemon, ReplayRun, replay_spec
from repro.replay.log import FlightLog
from repro.runtime.daemon import make_daemon
from repro.runtime.observers import Observer
from repro.runtime.scheduler import Scheduler
from repro.scenarios.library import build_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.substrates.spanning_tree import BFSSpanningTree

from tests.replay.conftest import record_run


def _tamper_step(path, step, mutate):
    """Rewrite the entry for ``step``, re-stamping nothing (body-only edit)."""
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, raw in enumerate(lines):
        entry = json.loads(raw)
        if entry.get("type") == "step" and entry["core"]["step"] == step:
            mutate(entry)
            lines[index] = json.dumps(entry, separators=(",", ":"))
            break
    else:
        raise AssertionError(f"no step {step} entry in {path}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def test_clean_log_replays_verified(recorded_log):
    path, scheduler, records = recorded_log
    report = ReplayRun(path).run()
    assert report.verified
    assert report.steps_replayed == len(records)
    assert report.final_checked and report.final_ok and report.metrics_ok
    assert report.divergence is None


def test_replay_reproduces_the_final_configuration(recorded_log):
    path, scheduler, _ = recorded_log
    replay = ReplayRun(path)
    report = replay.run()
    assert report.verified
    assert replay.scheduler.configuration.to_dict() == scheduler.configuration.to_dict()
    assert replay.scheduler.metrics.as_dict() == scheduler.metrics.as_dict()


def test_replay_observers_see_the_recorded_step_stream(recorded_log):
    path, _, records = recorded_log

    class Collect(Observer):
        def __init__(self):
            self.records = []

        def on_step(self, source, record):
            self.records.append(record)

    collector = Collect()
    report = ReplayRun(path, observers=(collector,)).run()
    assert report.verified
    assert collector.records == records


def test_tampered_write_set_is_caught_at_its_exact_step(recorded_log):
    path, _, records = recorded_log
    target = min(5, len(records) - 1)

    def corrupt(entry):
        move = entry["core"]["moves"][0]
        name = next(iter(move["changes"]))
        move["changes"][name][1] = {"__tuple__": [998, "phantom-edge"]}
        entry["core"]["changed"] = sorted(set(entry["core"]["changed"]) | {998})

    _tamper_step(path, target, corrupt)
    report = ReplayRun(path).run()
    assert not report.verified
    assert report.divergence is not None
    assert report.divergence.step == target
    assert report.steps_replayed == target  # steps before the damage matched
    text = report.divergence.format()
    assert f"divergence at step {target}" in text


def test_tampered_selection_is_reported_as_not_enabled(recorded_log):
    path, _, records = recorded_log
    target = min(3, len(records) - 1)
    _tamper_step(
        path, target,
        lambda entry: entry["core"]["executed"].append([999, "Phantom"]),
    )
    report = ReplayRun(path).run()
    assert not report.verified
    assert report.divergence.step == target
    assert "not" in report.divergence.reason and "999" in report.divergence.reason


def test_tampered_final_fingerprint_fails_the_final_check(recorded_log):
    path, _, _ = recorded_log
    lines = path.read_text(encoding="utf-8").splitlines()
    entry = json.loads(lines[-1])
    assert entry["type"] == "final"
    entry["fingerprint"] = "0" * 16
    lines[-1] = json.dumps(entry, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    report = ReplayRun(path).run()
    assert report.divergence is None  # every step matched...
    assert report.final_ok is False  # ...but the recorded final does not
    assert not report.verified
    assert "fingerprint mismatch" in report.final_detail


def test_raw_substrate_log_needs_an_explicit_protocol(tmp_path):
    path = tmp_path / "raw.flight.jsonl"
    record_run(path, protocol=BFSSpanningTree(), max_steps=40)
    with pytest.raises(ReplayError, match="pass protocol= explicitly"):
        ReplayRun(path)
    report = ReplayRun(path, protocol=BFSSpanningTree()).run()
    assert report.verified


def test_scenario_mutations_replay_through_the_seams(tmp_path):
    path = tmp_path / "scenario.flight.jsonl"
    recorder = FlightRecorder(path)
    ScenarioRunner(
        generators.random_connected(8, extra_edge_probability=0.3, seed=3),
        build_dftno(),
        build_scenario("cascade"),
        daemon=make_daemon("distributed"),
        seed=7,
        observers=(recorder,),
    ).run()
    recorder.close()
    log = FlightLog.load(path)
    mutations = [e for e in log.entries if e["type"] == "mutation"]
    assert mutations, "cascade scenario recorded no mutations"
    report = ReplayRun(log).run()
    assert report.verified
    assert report.mutations_applied == len(mutations)


def test_replay_spec_round_trips_through_the_api(tmp_path):
    from repro.api import RunSpec

    spec = RunSpec(protocol="dftno", seed=11, record=str(tmp_path))
    original = run(spec)
    log_path = original.row["flight_log"]
    replayed = run(replay_spec(log_path))
    assert replayed.engine == "scheduler-replay"
    assert replayed.row["verified"] is True
    assert replayed.row["converged"] is True
    assert replayed.row["steps_replayed"] == original.row["total_steps"]
    assert replayed.row["flight_log"] == str(log_path)


def test_replay_spec_refuses_a_raw_log(tmp_path):
    path = tmp_path / "raw.flight.jsonl"
    record_run(path, protocol=BFSSpanningTree(), max_steps=10)
    with pytest.raises(ReplayError, match="no recorded RunSpec"):
        replay_spec(path)


def test_replay_daemon_refuseses_to_select_unarmed():
    daemon = ReplayDaemon()
    with pytest.raises(ReplayError, match="no recorded selection armed"):
        daemon.select([0, 1], step=0, rng=random.Random(0))
    daemon.arm([1])
    assert daemon.select([0, 1], step=0, rng=random.Random(0)) == [1]
    # The armed selection is one-shot.
    with pytest.raises(ReplayError):
        daemon.select([0, 1], step=1, rng=random.Random(0))


def test_stepping_a_replay_scheduler_past_the_log_raises(recorded_log):
    path, _, _ = recorded_log
    replay = ReplayRun(path)
    report = replay.run()
    assert report.verified
    with pytest.raises(ReplayError, match="outside the log"):
        replay.scheduler.step()


def test_sharded_recording_replays_on_the_single_process_core(tmp_path):
    from repro.shard import ShardedScheduler

    path = tmp_path / "sharded.flight.jsonl"
    recorder = FlightRecorder(path)
    scheduler = ShardedScheduler(
        generators.random_connected(8, extra_edge_probability=0.3, seed=5),
        build_dftno(),
        daemon=make_daemon("distributed"),
        seed=5,
        shards=2,
        mode="fork",
        observers=(recorder,),
    )
    try:
        for _ in range(80):
            if scheduler.step() is None:
                break
    finally:
        scheduler.close()
        recorder.close()
    log = FlightLog.load(path)
    exchanges = [e for e in log.entries if e["type"] == "exchange"]
    assert exchanges, "sharded run recorded no coordinator<->worker exchanges"
    report = ReplayRun(log).run()
    assert report.verified


def test_divergence_details_attribute_the_exact_variable(recorded_log):
    path, _, records = recorded_log
    target = min(2, len(records) - 1)

    def corrupt(entry):
        move = entry["core"]["moves"][0]
        name = next(iter(move["changes"]))
        move["changes"][name][1] = "corrupted-value"
        corrupt.node = move["node"]
        corrupt.name = name

    _tamper_step(path, target, corrupt)
    report = ReplayRun(path).run()
    details = "\n".join(report.divergence.details)
    assert f"node {corrupt.node}" in details
    assert repr(corrupt.name) in details
