"""Test package."""
