"""The struct-of-arrays configuration mirror (:mod:`repro.runtime.arrayview`).

The load-bearing property is *coherence*: the columnar view tracks the dict
configuration through its change watcher, so no interleaving of dict-path
mutations (scheduler steps, scenario-style ``set``/``update_node`` writes,
``replace_node``, freeze/unfreeze) with array-path reads may ever observe the
two representations disagreeing.  The hypothesis test below drives exactly
that interleaving.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.runtime import arrayview
from repro.runtime.arrayview import ArrayView, ArrayViewUnsupported, column_sizes
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import SynchronousDaemon
from repro.runtime.scheduler import Scheduler
from repro.substrates.spanning_tree import BFSSpanningTree


def _assert_coherent(view: ArrayView, configuration: Configuration) -> None:
    """The array view, after sync, must agree with the dict state everywhere."""
    nodes = list(view.network.nodes())
    decoded = view.states_of(nodes)
    for node in nodes:
        state = configuration.peek_state(node)
        for name in view.variable_names:
            assert decoded[node][name] == state[name], (node, name)


def test_view_matches_initial_and_stepped_configuration() -> None:
    network = generators.random_connected(12, seed=3)
    protocol = BFSSpanningTree()
    scheduler = Scheduler(network, protocol, daemon=SynchronousDaemon(), seed=7)
    with ArrayView(network, protocol, scheduler.configuration) as view:
        _assert_coherent(view, scheduler.configuration)
        while scheduler.step() is not None:
            _assert_coherent(view, scheduler.configuration)


def test_column_sizes_matches_view_allocation() -> None:
    network = generators.random_connected(9, seed=2)
    protocol = build_dftno()
    sizes = column_sizes(network, protocol)
    view = ArrayView(network, protocol, protocol.initial_configuration(network))
    assert view.sizes() == sizes
    view.detach()


def test_requires_numpy(monkeypatch) -> None:
    monkeypatch.setattr(arrayview, "HAVE_NUMPY", False)
    network = generators.ring(4)
    protocol = BFSSpanningTree()
    with pytest.raises(ArrayViewUnsupported, match="numpy"):
        ArrayView(network, protocol, protocol.initial_configuration(network))


def test_mis_sized_backing_buffer_is_rejected() -> None:
    network = generators.ring(5)
    protocol = BFSSpanningTree()
    sizes = column_sizes(network, protocol)
    buffers = {
        name: np.zeros(length + 1, dtype=np.int64) for name, length in sizes.items()
    }
    with pytest.raises(ArrayViewUnsupported, match="backing buffer"):
        ArrayView(
            network, protocol, protocol.initial_configuration(network), buffers=buffers
        )


def test_detached_view_stops_tracking() -> None:
    network = generators.ring(4)
    protocol = BFSSpanningTree()
    configuration = protocol.initial_configuration(network)
    view = ArrayView(network, protocol, configuration)
    _assert_coherent(view, configuration)
    view.detach()
    configuration.set(1, "bt_dist", 3)
    view.sync()
    assert view.value_at(1, "bt_dist") != 3


# One operation of the interleaving: (opcode, node selector, value seed).
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["step", "set", "update", "replace", "freeze", "unfreeze"]),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=2**16),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=_OPS, seed=st.integers(min_value=0, max_value=2**16))
def test_view_never_diverges_under_interleaved_mutation(ops, seed) -> None:
    """Hypothesis: arbitrary dict-path mutations never desync the array view.

    ``set``/``update_node`` are what scenario events perform under the hood;
    ``replace_node`` swaps a whole local state; freeze/unfreeze perturb the
    scheduler's selection (and hence which nodes the steps touch) without
    touching state directly.  After every single operation the array view
    must decode back exactly the dict configuration.
    """
    network = generators.random_connected(10, seed=4)
    protocol = build_dftno()
    scheduler = Scheduler(
        network,
        protocol,
        daemon=SynchronousDaemon(),
        seed=seed,
        configuration=protocol.random_configuration(network, seed=seed),
    )
    configuration = scheduler.configuration
    rng = random.Random(seed)
    with ArrayView(network, protocol, configuration) as view:
        for opcode, node_pick, value_seed in ops:
            node = node_pick % network.n
            if opcode == "step":
                scheduler.step()
            elif opcode == "set":
                state = protocol.random_state(network, node, random.Random(value_seed))
                name = rng.choice(sorted(state))
                configuration.set(node, name, state[name])
            elif opcode == "update":
                state = protocol.random_state(network, node, random.Random(value_seed))
                names = rng.sample(sorted(state), k=max(1, len(state) // 2))
                configuration.update_node(
                    node, {name: state[name] for name in names}
                )
            elif opcode == "replace":
                configuration.replace_node(
                    node, protocol.random_state(network, node, random.Random(value_seed))
                )
            elif opcode == "freeze":
                scheduler.freeze([node])
            elif opcode == "unfreeze":
                scheduler.unfreeze([node])
            _assert_coherent(view, configuration)
