"""Unit tests for configurations, processor views and guarded actions."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.runtime.actions import Action
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView


@pytest.fixture
def config() -> Configuration:
    return Configuration({0: {"x": 1, "m": {1: 5}}, 1: {"x": 2}, 2: {"x": 3}})


def test_configuration_get_and_set(config):
    assert config.get(0, "x") == 1
    config.set(0, "x", 9)
    assert config.get(0, "x") == 9
    config.set(5, "fresh", "value")
    assert config.get(5, "fresh") == "value"


def test_configuration_get_missing_raises(config):
    with pytest.raises(ProtocolError):
        config.get(0, "missing")
    with pytest.raises(ProtocolError):
        config.get(99, "x")


def test_configuration_has_and_variables(config):
    assert config.has(0, "x")
    assert not config.has(0, "zzz")
    assert set(config.variables_of(0)) == {"x", "m"}
    assert set(config.nodes()) == {0, 1, 2}


def test_configuration_copy_is_deep(config):
    copy = config.copy()
    copy.get(0, "m")[1] = 99
    assert config.get(0, "m")[1] == 5
    copy.set(1, "x", 42)
    assert config.get(1, "x") == 2


def test_configuration_update_node_and_state_of(config):
    config.update_node(1, {"x": 7, "y": 8})
    assert config.get(1, "y") == 8
    state = config.state_of(1)
    state["x"] = 0
    assert config.get(1, "x") == 7


def test_configuration_equality_and_diff(config):
    other = config.copy()
    assert config == other
    other.set(2, "x", 10)
    assert config != other
    diff = config.diff(other)
    assert diff == {2: {"x": (3, 10)}}
    assert config != "something else"


def test_configuration_to_dict_and_format(config):
    data = config.to_dict()
    assert data[1]["x"] == 2
    text = config.format()
    assert "x=1" in text
    restricted = config.format(variables=("x",))
    assert "m=" not in restricted


def test_configuration_repr(config):
    assert "nodes=3" in repr(config)


# ----------------------------------------------------------------------
# ProcessorView
# ----------------------------------------------------------------------
def test_view_reads_own_and_neighbor_variables():
    network = generators.path(3)
    config = Configuration({node: {"v": node * 10} for node in network.nodes()})
    view = ProcessorView(1, network, config)
    assert view.read("v") == 10
    assert view.read_neighbor(0, "v") == 0
    assert view.read_neighbor(2, "v") == 20
    assert view.neighbors == (0, 2)
    assert view.degree == 2
    assert view.port(2) == 1
    assert not view.is_root
    assert view.network is network
    assert view.node == 1


def test_view_rejects_non_neighbor_reads():
    network = generators.path(4)
    config = Configuration({node: {"v": 0} for node in network.nodes()})
    view = ProcessorView(0, network, config)
    with pytest.raises(ProtocolError):
        view.read_neighbor(3, "v")
    with pytest.raises(ProtocolError):
        view.try_read_neighbor(3, "v")


def test_view_try_read_neighbor_default():
    network = generators.path(3)
    config = Configuration({0: {"v": 1}, 1: {"v": 2}, 2: {}})
    view = ProcessorView(1, network, config)
    assert view.try_read_neighbor(2, "v", default=-1) == -1
    assert view.try_read_neighbor(0, "v", default=-1) == 1


def test_view_read_your_own_writes_and_read_pre():
    network = generators.path(3)
    config = Configuration({node: {"v": 5} for node in network.nodes()})
    view = ProcessorView(1, network, config)
    view.write("v", 9)
    assert view.read("v") == 9          # sees its own write in the same step
    assert view.read_pre("v") == 5      # pre-step value still accessible
    assert config.get(1, "v") == 5      # nothing applied yet
    assert view.pending_writes == {"v": 9}


def test_view_write_copies_mutable_values():
    network = generators.path(2)
    config = Configuration({0: {"m": {}}, 1: {"m": {}}})
    view = ProcessorView(0, network, config)
    value = {1: 1}
    view.write("m", value)
    value[1] = 99
    assert view.pending_writes["m"] == {1: 1}


def test_view_is_root_flag():
    network = generators.path(3)
    config = Configuration({node: {} for node in network.nodes()})
    assert ProcessorView(0, network, config).is_root
    assert not ProcessorView(2, network, config).is_root


# ----------------------------------------------------------------------
# Action
# ----------------------------------------------------------------------
def test_action_enabled_and_execute():
    network = generators.path(2)
    config = Configuration({0: {"v": 0}, 1: {"v": 0}})
    action = Action("bump", lambda view: view.read("v") < 3, lambda view: view.write("v", view.read("v") + 1))
    view = ProcessorView(0, network, config)
    assert action.enabled(view)
    action.execute(view)
    assert view.pending_writes == {"v": 1}


def test_action_with_extra_statement_runs_both_and_sees_writes():
    network = generators.path(2)
    config = Configuration({0: {"v": 0, "copy": -1}, 1: {"v": 0}})
    base = Action("set", lambda view: True, lambda view: view.write("v", 7))
    hooked = base.with_extra_statement(lambda view: view.write("copy", view.read("v")), suffix="")
    view = ProcessorView(0, network, config)
    hooked.execute(view)
    assert view.pending_writes == {"v": 7, "copy": 7}
    assert hooked.name == "set"


def test_action_with_extra_statement_suffix_changes_name():
    base = Action("set", lambda view: True, lambda view: None)
    assert base.with_extra_statement(lambda view: None).name == "set+hook"


def test_replace_node_drops_stale_variables():
    config = Configuration({0: {"a": 1, "b": 2}})
    config.replace_node(0, {"a": 7})
    assert config.variables_of(0) == ("a",)
    assert config.get(0, "a") == 7
    assert not config.has(0, "b")
    config.replace_node(1, {"c": 3})  # creating a node works too
    assert config.get(1, "c") == 3
