"""Unit tests for the daemon (scheduling adversary) implementations."""

from __future__ import annotations

import random

import pytest

from repro.errors import SchedulingError
from repro.runtime.daemon import (
    AdversarialDaemon,
    CentralDaemon,
    DistributedDaemon,
    SynchronousDaemon,
    make_daemon,
)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(7)


def test_central_random_selects_exactly_one_enabled(rng):
    daemon = CentralDaemon("random")
    for step in range(50):
        chosen = daemon.select((1, 4, 9), step, rng)
        assert len(chosen) == 1
        assert chosen[0] in (1, 4, 9)


def test_central_round_robin_cycles(rng):
    daemon = CentralDaemon("round_robin")
    picks = [daemon.select((0, 1, 2), step, rng)[0] for step in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_central_round_robin_skips_disabled(rng):
    daemon = CentralDaemon("round_robin")
    assert daemon.select((3, 5), 0, rng) == [3]
    assert daemon.select((3, 5), 1, rng) == [5]
    assert daemon.select((3, 5), 2, rng) == [3]


def test_central_rejects_unknown_policy():
    with pytest.raises(SchedulingError):
        CentralDaemon("fifo")


def test_synchronous_selects_everyone(rng):
    daemon = SynchronousDaemon()
    assert daemon.select((2, 5, 8), 0, rng) == [2, 5, 8]


def test_distributed_always_nonempty_subset(rng):
    daemon = DistributedDaemon(activation_probability=0.3)
    for step in range(100):
        chosen = daemon.select((0, 1, 2, 3), step, rng)
        assert chosen
        assert set(chosen) <= {0, 1, 2, 3}


def test_distributed_probability_one_selects_all(rng):
    daemon = DistributedDaemon(activation_probability=1.0)
    assert daemon.select((1, 2, 3), 0, rng) == [1, 2, 3]


def test_distributed_rejects_bad_probability():
    with pytest.raises(SchedulingError):
        DistributedDaemon(0.0)
    with pytest.raises(SchedulingError):
        DistributedDaemon(1.5)


def test_adversarial_prefers_most_recently_enabled(rng):
    daemon = AdversarialDaemon(fairness_bound=100)
    # Two processors become enabled at step 0; whichever is bypassed keeps its
    # old timestamp, so a processor appearing later must be preferred over it.
    first = daemon.select((0, 1), 0, rng)[0]
    waiting = 1 - first
    assert daemon.select((waiting, 2), 1, rng) == [2]
    assert daemon.select((waiting, 3), 2, rng) == [3]


def test_adversarial_is_weakly_fair(rng):
    bound = 4
    daemon = AdversarialDaemon(fairness_bound=bound)
    picks = []
    # Processor 0 stays enabled while new processors keep appearing; the
    # fairness bound must force 0 to run within `bound` bypasses.
    enabled_sets = [(0, step + 1) for step in range(20)]
    for step, enabled in enumerate(enabled_sets):
        picks.append(daemon.select(enabled, step, rng)[0])
        if 0 in picks:
            break
    assert 0 in picks
    assert len(picks) <= bound + 1


def test_adversarial_bounded_bypass_holds_continuously(rng):
    # Stronger than eventual selection: over a long adversarial schedule with
    # perpetual churn, a continuously enabled processor is *never* bypassed
    # more than fairness_bound consecutive times -- the bounded-bypass form
    # of weak fairness.
    bound = 3
    daemon = AdversarialDaemon(fairness_bound=bound)
    bypassed_streak = 0
    selections_of_zero = 0
    for step in range(200):
        enabled = (0, (step % 5) + 1, (step % 7) + 10)  # 0 stays enabled forever
        chosen = daemon.select(enabled, step, rng)[0]
        if chosen == 0:
            selections_of_zero += 1
            bypassed_streak = 0
        else:
            bypassed_streak += 1
            assert bypassed_streak <= bound + 1
    assert selections_of_zero >= 200 // (bound + 2)


def test_adversarial_rejects_bad_bound():
    with pytest.raises(SchedulingError):
        AdversarialDaemon(0)


def test_adversarial_reset_clears_bookkeeping(rng):
    daemon = AdversarialDaemon(fairness_bound=2)
    daemon.select((0, 1), 0, rng)
    daemon.reset()
    assert daemon._enabled_since == {}
    assert daemon._bypassed == {}


def test_make_daemon_dispatch():
    assert isinstance(make_daemon("central"), CentralDaemon)
    assert isinstance(make_daemon("synchronous"), SynchronousDaemon)
    assert isinstance(make_daemon("distributed"), DistributedDaemon)
    assert isinstance(make_daemon("adversarial"), AdversarialDaemon)
    assert make_daemon("central", policy="round_robin").policy == "round_robin"


def test_make_daemon_unknown_kind():
    with pytest.raises(SchedulingError):
        make_daemon("quantum")


def test_daemon_names_are_descriptive():
    assert "central" in CentralDaemon("random").name
    assert "distributed" in DistributedDaemon(0.25).name
    assert "adversarial" in AdversarialDaemon(3).name
    assert "Daemon" in repr(SynchronousDaemon())
