"""Unit tests for fault injection, metrics and traces."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import SynchronousDaemon
from repro.runtime.faults import FaultInjector, corrupt_configuration, random_configuration
from repro.runtime.metrics import (
    ExecutionMetrics,
    space_bits_per_node,
    space_summary,
    theoretical_orientation_bits,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.trace import Trace, TraceEvent
from repro.substrates.dijkstra_ring import DijkstraTokenRing
from repro.core.dftno import build_dftno


# ----------------------------------------------------------------------
# Faults
# ----------------------------------------------------------------------
def test_random_configuration_covers_all_nodes_and_variables(small_ring):
    protocol = DijkstraTokenRing()
    config = random_configuration(protocol, small_ring, seed=3)
    for node in small_ring.nodes():
        assert config.has(node, "dk_x")


def test_corrupt_configuration_full_corruption_changes_something(small_ring):
    protocol = DijkstraTokenRing(k=50)
    base = protocol.initial_configuration(small_ring)
    corrupted = corrupt_configuration(base, protocol, small_ring, seed=1)
    assert corrupted != base
    assert base == protocol.initial_configuration(small_ring)  # original untouched


def test_corrupt_configuration_partial_touches_some_nodes(small_ring):
    protocol = DijkstraTokenRing(k=1000)
    base = protocol.initial_configuration(small_ring)
    corrupted = corrupt_configuration(
        base, protocol, small_ring, node_fraction=0.34, variable_fraction=1.0, seed=2
    )
    touched = [node for node in small_ring.nodes() if corrupted.get(node, "dk_x") != base.get(node, "dk_x")]
    assert 1 <= len(touched) <= 2 + 1  # roughly a third of 6 processors


def test_corrupt_configuration_zero_fraction_is_identity(small_ring):
    protocol = DijkstraTokenRing()
    base = protocol.initial_configuration(small_ring)
    corrupted = corrupt_configuration(base, protocol, small_ring, node_fraction=0.0, seed=3)
    assert corrupted == base


def test_corrupt_configuration_zero_variable_fraction_is_identity(small_ring):
    # Regression: variable_fraction=0.0 must corrupt *zero* variables even at
    # hit processors (a "hit at least one variable" floor only applies to
    # positive fractions).
    protocol = DijkstraTokenRing()
    base = protocol.initial_configuration(small_ring)
    corrupted = corrupt_configuration(
        base, protocol, small_ring, node_fraction=1.0, variable_fraction=0.0, seed=3
    )
    assert corrupted == base


def test_corrupt_configuration_tiny_positive_fractions_hit_at_least_one(small_ring):
    # The other bound: any positive fraction rounds up to one processor /
    # one variable rather than silently down to none.
    protocol = DijkstraTokenRing(k=10_000)
    base = protocol.initial_configuration(small_ring)
    changed = 0
    for seed in range(8):
        corrupted = corrupt_configuration(
            base, protocol, small_ring, node_fraction=0.01, variable_fraction=0.01, seed=seed
        )
        diff = base.diff(corrupted)
        assert len(diff) <= 1
        changed += len(diff)
    assert changed > 0  # with k=10000 a redraw virtually never collides


def test_corrupt_configuration_rejects_bad_fractions(small_ring):
    protocol = DijkstraTokenRing()
    base = protocol.initial_configuration(small_ring)
    with pytest.raises(ValueError):
        corrupt_configuration(base, protocol, small_ring, node_fraction=2.0)
    with pytest.raises(ValueError):
        corrupt_configuration(base, protocol, small_ring, variable_fraction=-0.5)


def test_fault_injector_fires_once_per_scheduled_step(small_ring):
    protocol = DijkstraTokenRing(k=100)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
        seed=4,
    )
    injector = FaultInjector(protocol, small_ring, schedule={0: (1.0, 1.0)}, seed=5)
    assert injector.maybe_inject(scheduler)
    assert not injector.maybe_inject(scheduler)  # same step, already injected
    assert injector.injected_at == [0]


def test_fault_injector_ignores_unscheduled_steps(small_ring):
    protocol = DijkstraTokenRing()
    scheduler = Scheduler(small_ring, protocol, seed=6)
    injector = FaultInjector(protocol, small_ring, schedule={5: (1.0, 1.0)})
    assert not injector.maybe_inject(scheduler)


def test_fault_injector_double_fire_protection_across_a_run(small_ring):
    # Even when maybe_inject is polled many times per step (as a nested
    # experiment loop might), each scheduled burst fires exactly once.
    protocol = DijkstraTokenRing(k=100)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
        seed=4,
    )
    injector = FaultInjector(protocol, small_ring, schedule={0: (1.0, 1.0), 3: (0.5, 1.0)}, seed=5)
    fired = 0
    for _ in range(6):
        for _ in range(3):  # repeated polls at the same step
            fired += injector.maybe_inject(scheduler)
        scheduler.step()
    assert fired == 2
    assert injector.injected_at == [0, 3]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_execution_metrics_record_and_merge():
    a = ExecutionMetrics()
    a.record_move(1, "A", "layer1")
    a.record_move(1, "A", "layer1")
    a.record_move(2, "B", "layer2")
    b = ExecutionMetrics(steps=3, rounds=1)
    b.record_move(1, "B", "layer2")
    a.merge(b)
    assert a.moves == 4
    assert a.moves_per_node == {1: 3, 2: 1}
    assert a.moves_per_action == {"A": 2, "B": 2}
    assert a.moves_per_layer == {"layer1": 2, "layer2": 2}
    assert a.steps == 3 and a.rounds == 1
    as_dict = a.as_dict()
    assert as_dict["moves"] == 4


def test_space_bits_per_node_and_summary(small_ring):
    protocol = build_dftno()
    per_node = space_bits_per_node(protocol, small_ring)
    assert set(per_node) == set(small_ring.nodes())
    assert all(bits > 0 for bits in per_node.values())

    summary = space_summary(protocol, small_ring)
    assert summary["n"] == small_ring.n
    assert summary["max_bits_per_node"] == max(per_node.values())
    assert summary["total_bits"] == sum(per_node.values())
    assert set(summary["per_layer"]) == {"dftc", "dftno"}


def test_theoretical_orientation_bits_shape():
    small = generators.ring(8)
    large = generators.ring(64)
    dense = generators.complete(8)
    assert theoretical_orientation_bits(large) > theoretical_orientation_bits(small)
    assert theoretical_orientation_bits(dense) > theoretical_orientation_bits(small)


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def _event(step=0, node=0, action="A", layer="L", changes=None):
    return TraceEvent(step=step, round=0, node=node, action=action, layer=layer, changes=changes or {})


def test_trace_records_and_filters():
    trace = Trace()
    trace.record(_event(step=0, node=1, action="A", changes={"x": (0, 1)}))
    trace.record(_event(step=1, node=2, action="B"))
    assert len(trace) == 2
    assert len(trace.for_node(1)) == 1
    assert len(trace.for_action("B")) == 1
    assert len(trace.for_variable("x")) == 1
    assert list(iter(trace))[0].node == 1


def test_trace_limit_drops_oldest():
    trace = Trace(limit=3)
    for step in range(5):
        trace.record(_event(step=step))
    assert len(trace) == 3
    assert trace.dropped == 2
    assert trace.events()[0].step == 2
    assert "dropped=2" in repr(trace)


def test_trace_format_and_event_format():
    trace = Trace()
    trace.record(_event(step=3, node=7, action="Label", changes={"eta": (0, 4)}))
    trace.record(_event(step=4, node=8, action="Noop"))
    text = trace.format()
    assert "p7" in text and "Label" in text and "0 -> 4" in text
    assert "(no state change)" in trace.events()[1].format()
    assert "p8" in trace.format(last=1)
