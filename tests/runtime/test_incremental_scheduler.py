"""Unit tests for the incremental enabled-set machinery.

The equivalence suite (``tests/api/test_engine_equivalence.py``) proves the
incremental and full-scan cores produce identical executions end to end;
these tests pin down the mechanisms that make that true: the configuration
change journal, the dirty-frontier refresh after every mutation path, and
the debug-mode guard read tracker.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import make_daemon
from repro.runtime.processor import ProcessorView
from repro.runtime.scheduler import Scheduler
from repro.substrates.dijkstra_ring import DijkstraTokenRing, VAR_COUNTER
from repro.substrates.spanning_tree import BFSSpanningTree


# ----------------------------------------------------------------------
# Configuration change journal
# ----------------------------------------------------------------------
def test_journal_marks_only_real_changes():
    config = Configuration({0: {"x": 1}, 1: {"x": 2}})
    config.drain_dirty()
    config.set(0, "x", 1)  # same value: no change
    assert config.dirty_nodes == frozenset()
    config.set(0, "x", 5)
    config.update_node(1, {"x": 2})  # same value: no change
    assert config.dirty_nodes == frozenset({0})
    assert config.drain_dirty() == frozenset({0})
    assert config.dirty_nodes == frozenset()


def test_apply_writes_reports_changes_and_journals_slot_creation():
    config = Configuration({0: {"x": 1}})
    config.drain_dirty()
    changes = config.apply_writes(0, {"x": 2, "y": 7})
    assert changes == {"x": (1, 2), "y": (None, 7)}
    assert config.drain_dirty() == frozenset({0})
    # Creating a slot holding None is invisible to MoveRecord changes
    # (historical semantics) but still journals the node for guard refresh.
    changes = config.apply_writes(0, {"z": None})
    assert changes == {}
    assert config.drain_dirty() == frozenset({0})


def test_replace_node_journals_only_on_difference():
    config = Configuration({0: {"x": 1}})
    config.drain_dirty()
    config.replace_node(0, {"x": 1})
    assert config.dirty_nodes == frozenset()
    config.replace_node(0, {"y": 3})
    assert config.dirty_nodes == frozenset({0})


def test_copies_start_with_a_clean_journal():
    config = Configuration({0: {"x": 1}})
    config.set(0, "x", 9)
    assert config.copy().dirty_nodes == frozenset()


def test_mark_dirty_accepts_node_and_iterable():
    config = Configuration({0: {"x": 1}, 1: {"x": 1}})
    config.mark_dirty(0)
    config.mark_dirty([1])
    assert config.dirty_nodes == frozenset({0, 1})


# ----------------------------------------------------------------------
# Scheduler dirty-frontier refresh
# ----------------------------------------------------------------------
def _assert_enabled_matches_direct_evaluation(scheduler: Scheduler) -> None:
    """The cached enabled-set must equal a fresh per-node guard evaluation."""
    cached = scheduler.enabled_nodes()
    direct = tuple(
        node for node in scheduler.network.nodes() if scheduler.is_enabled(node)
    )
    assert cached == direct


def test_external_replace_node_feeds_the_dirty_frontier():
    """The CrashRejoin path: a direct configuration write refreshes the cache."""
    network = generators.ring(6)
    scheduler = Scheduler(network, DijkstraTokenRing(), seed=1)
    scheduler.enabled_nodes()  # populate the cache
    victim = 3
    scheduler.configuration.replace_node(victim, {VAR_COUNTER: 0})
    scheduler.configuration.replace_node(victim, {VAR_COUNTER: 5})
    _assert_enabled_matches_direct_evaluation(scheduler)


def test_freeze_and_unfreeze_filter_without_stale_state():
    network = generators.random_connected(7, seed=2)
    scheduler = Scheduler(network, BFSSpanningTree(), seed=2)
    enabled_before = scheduler.enabled_nodes()
    assert enabled_before
    frozen = enabled_before[0]
    scheduler.freeze((frozen,))
    assert frozen not in scheduler.enabled_nodes()
    _assert_enabled_matches_direct_evaluation(scheduler)
    scheduler.unfreeze((frozen,))
    assert scheduler.enabled_nodes() == enabled_before


def test_set_configuration_invalidates_the_whole_cache():
    network = generators.random_connected(6, seed=3)
    scheduler = Scheduler(network, BFSSpanningTree(), seed=3)
    scheduler.run_until_legitimate()
    replacement = scheduler.protocol.random_configuration(
        network, rng=__import__("random").Random(99)
    )
    scheduler.set_configuration(replacement)
    _assert_enabled_matches_direct_evaluation(scheduler)


def test_set_daemon_keeps_the_enabled_set():
    network = generators.random_connected(6, seed=4)
    scheduler = Scheduler(network, BFSSpanningTree(), seed=4)
    before = scheduler.enabled_nodes()
    scheduler.set_daemon(make_daemon("adversarial"))
    assert scheduler.enabled_nodes() == before


def test_stepping_keeps_cache_consistent_under_distributed_daemon():
    network = generators.random_connected(8, seed=5)
    scheduler = Scheduler(network, BFSSpanningTree(), daemon=make_daemon("distributed"), seed=5)
    for _ in range(30):
        if scheduler.step() is None:
            break
        _assert_enabled_matches_direct_evaluation(scheduler)


# ----------------------------------------------------------------------
# Guard locality: the invariant the dirty frontier relies on
# ----------------------------------------------------------------------
def test_processor_view_read_tracker_records_closed_neighborhood():
    network = generators.ring(5)
    config = Configuration({node: {"x": node} for node in network.nodes()})
    view = ProcessorView(2, network, config, track_reads=True)
    view.read("x")
    for neighbor in network.neighbors(2):
        view.read_neighbor(neighbor, "x")
    assert view.read_nodes == frozenset({2, *network.neighbors(2)})
    untracked = ProcessorView(2, network, config)
    untracked.read("x")
    assert untracked.read_nodes == frozenset()


def test_non_neighbor_reads_are_rejected():
    """The locality invariant is structural: the view refuses remote reads."""
    network = generators.ring(6)
    config = Configuration({node: {"x": 0} for node in network.nodes()})
    view = ProcessorView(0, network, config, track_reads=True)
    far = 3  # opposite side of the ring
    with pytest.raises(ProtocolError):
        view.read_neighbor(far, "x")
    with pytest.raises(ProtocolError):
        view.try_read_neighbor(far, "x", default=None)


def test_debug_guard_locality_mode_runs_clean_on_real_protocols():
    network = generators.random_connected(6, seed=6)
    scheduler = Scheduler(
        network, BFSSpanningTree(), seed=6, check_guard_locality=True
    )
    result = scheduler.run_until_legitimate()
    assert result.converged
