"""Unit tests for the Protocol base class and the composition operators."""

from __future__ import annotations

import random
from typing import Sequence

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action
from repro.runtime.composition import HookedComposition, HookingLayer, LayeredProtocol
from repro.runtime.configuration import Configuration
from repro.runtime.processor import ProcessorView
from repro.runtime.protocol import Protocol
from repro.runtime.variables import VariableSpec, int_variable


class CounterProtocol(Protocol):
    """A toy protocol: every processor counts up to its target value."""

    name = "counter"

    def __init__(self, target: int = 3, variable: str = "count") -> None:
        self.target = target
        self.variable = variable

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        return [int_variable(self.variable, 0, self.target, initial=0)]

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        return [
            Action(
                "Count",
                lambda view: view.read(self.variable) < self.target,
                lambda view: view.write(self.variable, view.read(self.variable) + 1),
                layer=self.name,
            )
        ]

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        return all(
            configuration.get(node, self.variable) == self.target for node in network.nodes()
        )


class EmptyProtocol(Protocol):
    name = "empty"

    def variables(self, network, node):
        return [int_variable("x", 0, 1)]

    def actions(self, network, node):
        return []

    def legitimate(self, network, configuration):
        return True


class DuplicateVariableProtocol(Protocol):
    name = "dup"

    def variables(self, network, node):
        return [int_variable("x", 0, 1), int_variable("x", 0, 1)]

    def actions(self, network, node):
        return [Action("noop", lambda view: False, lambda view: None)]

    def legitimate(self, network, configuration):
        return True


# ----------------------------------------------------------------------
# Protocol base class
# ----------------------------------------------------------------------
def test_initial_configuration_uses_variable_initials(small_ring):
    protocol = CounterProtocol(target=5)
    config = protocol.initial_configuration(small_ring)
    assert all(config.get(node, "count") == 0 for node in small_ring.nodes())


def test_random_configuration_is_in_domain_and_seeded(small_ring):
    protocol = CounterProtocol(target=5)
    a = protocol.random_configuration(small_ring, seed=3)
    b = protocol.random_configuration(small_ring, seed=3)
    c = protocol.random_configuration(small_ring, seed=4)
    assert a == b
    assert any(a.get(node, "count") != c.get(node, "count") for node in small_ring.nodes())
    assert all(0 <= a.get(node, "count") <= 5 for node in small_ring.nodes())


def test_random_configuration_accepts_rng(small_ring):
    protocol = CounterProtocol()
    rng = random.Random(9)
    config = protocol.random_configuration(small_ring, rng=rng)
    assert all(config.has(node, "count") for node in small_ring.nodes())


def test_space_bits_sums_variables(small_ring):
    protocol = CounterProtocol(target=7)  # 8 values -> 3 bits
    assert protocol.space_bits(small_ring, 0) == 3


def test_variable_names_and_layers(small_ring):
    protocol = CounterProtocol()
    assert protocol.variable_names(small_ring, 0) == ("count",)
    assert protocol.layers() == (protocol,)
    assert "CounterProtocol" in repr(protocol)


def test_validate_rejects_duplicate_variables(small_ring):
    with pytest.raises(ProtocolError):
        DuplicateVariableProtocol().validate(small_ring)


def test_validate_rejects_actionless_processor(small_ring):
    with pytest.raises(ProtocolError):
        EmptyProtocol().validate(small_ring)


# ----------------------------------------------------------------------
# LayeredProtocol
# ----------------------------------------------------------------------
def test_layered_protocol_merges_variables_and_actions(small_ring):
    lower = CounterProtocol(target=2, variable="low")
    upper = CounterProtocol(target=3, variable="high")
    upper.name = "counter-high"
    layered = LayeredProtocol([lower, upper])
    assert set(layered.variable_names(small_ring, 0)) == {"low", "high"}
    assert len(layered.actions(small_ring, 0)) == 2
    assert layered.name == "counter+counter-high"
    assert len(layered.layers()) == 2


def test_layered_protocol_legitimate_requires_all_layers(small_ring):
    lower = CounterProtocol(target=1, variable="low")
    upper = CounterProtocol(target=1, variable="high")
    layered = LayeredProtocol([lower, upper])
    config = Configuration({node: {"low": 1, "high": 0} for node in small_ring.nodes()})
    assert not layered.legitimate(small_ring, config)
    config = Configuration({node: {"low": 1, "high": 1} for node in small_ring.nodes()})
    assert layered.legitimate(small_ring, config)


def test_layered_protocol_rejects_variable_clash(small_ring):
    with pytest.raises(ProtocolError):
        LayeredProtocol([CounterProtocol(), CounterProtocol()]).validate(small_ring)


def test_layered_protocol_needs_at_least_one_layer():
    with pytest.raises(ProtocolError):
        LayeredProtocol([])


# ----------------------------------------------------------------------
# HookedComposition
# ----------------------------------------------------------------------
class MirrorOverlay(HookingLayer):
    """Overlay that mirrors the base counter into its own variable on each count."""

    name = "mirror"

    def variables(self, network, node):
        return [int_variable("mirror", 0, network.n * 10, initial=0)]

    def hooks(self, network, node):
        return {"Count": lambda view: view.write("mirror", view.read("count"))}

    def actions(self, network, node):
        return []

    def legitimate(self, network, configuration):
        return all(
            configuration.get(node, "mirror") == configuration.get(node, "count")
            for node in network.nodes()
        )


class BadHookOverlay(MirrorOverlay):
    name = "bad-hook"

    def hooks(self, network, node):
        return {"NoSuchAction": lambda view: None}


def test_hooked_composition_runs_hook_in_same_step(small_ring):
    base = CounterProtocol(target=2)
    composed = HookedComposition(base, MirrorOverlay())
    composed.validate(small_ring)
    config = composed.initial_configuration(small_ring)
    view = ProcessorView(0, small_ring, config)
    action = composed.actions(small_ring, 0)[0]
    assert action.name == "Count"
    action.execute(view)
    # The hook saw the freshly written counter value.
    assert view.pending_writes == {"count": 1, "mirror": 1}


def test_hooked_composition_legitimacy_combines_layers(small_ring):
    base = CounterProtocol(target=1)
    composed = HookedComposition(base, MirrorOverlay())
    good = Configuration({node: {"count": 1, "mirror": 1} for node in small_ring.nodes()})
    bad = Configuration({node: {"count": 1, "mirror": 0} for node in small_ring.nodes()})
    assert composed.legitimate(small_ring, good)
    assert not composed.legitimate(small_ring, bad)


def test_hooked_composition_exposes_base_and_overlay(small_ring):
    base = CounterProtocol()
    overlay = MirrorOverlay()
    composed = HookedComposition(base, overlay, name="combo")
    assert composed.base is base
    assert composed.overlay is overlay
    assert composed.name == "combo"
    assert composed.layers() == (base, overlay)
    assert set(composed.variable_names(small_ring, 0)) == {"count", "mirror"}


def test_hooked_composition_rejects_unknown_hook_target(small_ring):
    composed = HookedComposition(CounterProtocol(), BadHookOverlay())
    with pytest.raises(ProtocolError):
        composed.validate(small_ring)


def test_hooked_composition_rejects_variable_clash(small_ring):
    class ClashOverlay(MirrorOverlay):
        def variables(self, network, node):
            return [int_variable("count", 0, 1)]

    with pytest.raises(ProtocolError):
        HookedComposition(CounterProtocol(), ClashOverlay()).validate(small_ring)


def test_hooking_layer_defaults():
    layer = HookingLayer.__new__(MirrorOverlay)  # default hooks() via base class
    assert HookingLayer.hooks(layer, None, 0) == {}
    assert HookingLayer.actions(layer, None, 0) == []
