"""Unit tests for the scheduler: steps, rounds, convergence detection."""

from __future__ import annotations

from typing import Sequence

import pytest

from repro.errors import ConvergenceError, SchedulingError
from repro.graphs import generators
from repro.graphs.network import RootedNetwork
from repro.runtime.actions import Action
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import CentralDaemon, Daemon, SynchronousDaemon
from repro.runtime.protocol import Protocol
from repro.runtime.scheduler import Scheduler
from repro.runtime.variables import VariableSpec, int_variable


class CountdownProtocol(Protocol):
    """Every processor decrements its own counter to zero (silent, converges)."""

    name = "countdown"

    def __init__(self, start: int = 3) -> None:
        self.start = start

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        return [int_variable("c", 0, self.start, initial=self.start)]

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        return [
            Action(
                "Dec",
                lambda view: view.read("c") > 0,
                lambda view: view.write("c", view.read("c") - 1),
                layer=self.name,
            )
        ]

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        return all(configuration.get(node, "c") == 0 for node in network.nodes())


class MaxPropagation(Protocol):
    """Each processor adopts the maximum value seen in its neighborhood (silent)."""

    name = "maxprop"

    def variables(self, network: RootedNetwork, node: int) -> Sequence[VariableSpec]:
        return [int_variable("v", 0, network.n, initial=lambda net, p: p)]

    def actions(self, network: RootedNetwork, node: int) -> Sequence[Action]:
        def desired(view):
            return max([view.read("v")] + [view.read_neighbor(q, "v") for q in view.neighbors])

        return [
            Action(
                "Adopt",
                lambda view: view.read("v") != desired(view),
                lambda view: view.write("v", desired(view)),
                layer=self.name,
            )
        ]

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        top = max(configuration.get(node, "v") for node in network.nodes())
        return all(configuration.get(node, "v") == top for node in network.nodes())


class EmptySelectionDaemon(Daemon):
    name = "empty"

    def select(self, enabled, step, rng):
        return []


class RogueDaemon(Daemon):
    name = "rogue"

    def select(self, enabled, step, rng):
        return [max(enabled) + 1000]


def test_run_terminates_when_silent(small_ring):
    scheduler = Scheduler(
        small_ring,
        CountdownProtocol(start=2),
        daemon=SynchronousDaemon(),
        configuration=CountdownProtocol(start=2).initial_configuration(small_ring),
    )
    result = scheduler.run(max_steps=100)
    assert result.terminated
    assert result.converged
    assert result.steps == 2
    assert result.moves == 2 * small_ring.n
    assert all(result.configuration.get(node, "c") == 0 for node in small_ring.nodes())


def test_synchronous_daemon_one_round_per_step(small_ring):
    protocol = CountdownProtocol(start=3)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    result = scheduler.run(max_steps=50)
    assert result.rounds == 3
    assert result.steps == 3


def test_central_daemon_round_counts_match_moves(small_ring):
    protocol = CountdownProtocol(start=2)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(small_ring),
    )
    result = scheduler.run(max_steps=100)
    # Under a central daemon every processor moves once per round.
    assert result.steps == 2 * small_ring.n
    assert result.rounds == 2
    assert result.moves == result.steps


def test_run_respects_max_steps(small_ring):
    protocol = CountdownProtocol(start=50)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(small_ring),
    )
    result = scheduler.run(max_steps=10)
    assert result.steps == 10
    assert not result.terminated
    assert not result.converged


def test_stop_predicate_halts_run(small_ring):
    protocol = CountdownProtocol(start=5)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    result = scheduler.run(max_steps=100, stop_predicate=lambda s: s.steps_executed >= 2)
    assert result.steps == 2
    assert result.converged


def test_first_legitimate_step_records_stable_point(small_ring):
    protocol = MaxPropagation()
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    result = scheduler.run(max_steps=100)
    assert result.terminated
    assert result.first_legitimate_step is not None
    assert result.first_legitimate_step <= result.steps
    assert result.first_legitimate_round is not None


def test_run_until_legitimate_converges_from_arbitrary_state(small_random):
    protocol = MaxPropagation()
    scheduler = Scheduler(small_random, protocol, seed=5)
    result = scheduler.run_until_legitimate(max_steps=10_000)
    assert result.converged
    assert protocol.legitimate(small_random, result.configuration)


def test_run_until_legitimate_raises_when_budget_too_small(small_ring):
    protocol = CountdownProtocol(start=40)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=CentralDaemon(),
        configuration=protocol.initial_configuration(small_ring),
        seed=1,
    )
    with pytest.raises(ConvergenceError):
        scheduler.run_until_legitimate(max_steps=5, raise_on_failure=True)


def test_run_until_legitimate_without_raise_returns_unconverged(small_ring):
    protocol = CountdownProtocol(start=40)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=CentralDaemon(),
        configuration=protocol.initial_configuration(small_ring),
        seed=1,
    )
    result = scheduler.run_until_legitimate(max_steps=5)
    assert not result.converged


def test_run_until_legitimate_confirm_steps_checks_closure(small_ring):
    protocol = MaxPropagation()
    scheduler = Scheduler(small_ring, protocol, daemon=SynchronousDaemon(), seed=2)
    result = scheduler.run_until_legitimate(max_steps=1_000, confirm_steps=5)
    assert result.converged
    assert protocol.legitimate(small_ring, result.configuration)


def test_enabled_nodes_and_is_enabled(small_ring):
    protocol = CountdownProtocol(start=1)
    config = protocol.initial_configuration(small_ring)
    config.set(0, "c", 0)
    scheduler = Scheduler(small_ring, protocol, configuration=config)
    assert 0 not in scheduler.enabled_nodes()
    assert scheduler.is_enabled(1)
    assert not scheduler.is_enabled(0)
    assert set(scheduler.enabled_actions()) == set(range(1, small_ring.n))


def test_step_returns_none_when_nothing_enabled(small_ring):
    protocol = CountdownProtocol(start=1)
    config = Configuration({node: {"c": 0} for node in small_ring.nodes()})
    scheduler = Scheduler(small_ring, protocol, configuration=config)
    assert scheduler.step() is None


def test_scheduler_rejects_empty_daemon_selection(small_ring):
    protocol = CountdownProtocol(start=1)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=EmptySelectionDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    with pytest.raises(SchedulingError):
        scheduler.step()


def test_scheduler_rejects_selection_of_disabled_processor(small_ring):
    protocol = CountdownProtocol(start=1)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=RogueDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    with pytest.raises(SchedulingError):
        scheduler.step()


def test_step_record_contents(small_ring):
    protocol = CountdownProtocol(start=1)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(small_ring),
    )
    record = scheduler.step()
    assert record is not None
    assert record.step == 0
    assert record.executed[0][1] == "Dec"
    assert record.changed_nodes == (record.executed[0][0],)


def test_trace_recording(small_ring):
    protocol = CountdownProtocol(start=1)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
        record_trace=True,
    )
    scheduler.run(max_steps=10)
    assert scheduler.trace is not None
    assert len(scheduler.trace) == small_ring.n
    event = scheduler.trace.events()[0]
    assert event.action == "Dec"
    assert event.changes["c"] == (1, 0)


def test_metrics_per_node_and_action(small_ring):
    protocol = CountdownProtocol(start=2)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    scheduler.run(max_steps=10)
    metrics = scheduler.metrics
    assert metrics.moves == 2 * small_ring.n
    assert metrics.moves_per_action == {"Dec": 2 * small_ring.n}
    assert all(count == 2 for count in metrics.moves_per_node.values())
    assert metrics.moves_per_layer == {"countdown": 2 * small_ring.n}


def test_set_configuration_resets_round_tracking(small_ring):
    protocol = CountdownProtocol(start=3)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    scheduler.step()
    scheduler.set_configuration(protocol.initial_configuration(small_ring))
    assert all(
        scheduler.configuration.get(node, "c") == 3 for node in small_ring.nodes()
    )


def test_default_start_is_arbitrary_configuration(small_ring):
    protocol = CountdownProtocol(start=6)
    a = Scheduler(small_ring, protocol, seed=1).configuration
    b = Scheduler(small_ring, protocol, seed=2).configuration
    assert a != b


def test_scheduler_repr(small_ring):
    protocol = CountdownProtocol()
    scheduler = Scheduler(small_ring, protocol, seed=0)
    assert "countdown" in repr(scheduler)


class TransientLegitimacyProtocol(CountdownProtocol):
    """Legitimate only while every counter is exactly 1; terminates at 0."""

    name = "transient"

    def legitimate(self, network: RootedNetwork, configuration: Configuration) -> bool:
        return all(configuration.get(node, "c") == 1 for node in network.nodes())


def test_confirm_window_reports_termination_of_the_inner_run(small_ring):
    # Legitimacy holds transiently at c == 1, is violated at c == 0, and the
    # system then terminates illegitimate: the confirmation machinery must
    # report terminated=True (the "provably stuck" signal scenarios rely on),
    # not a mere budget exhaustion.
    protocol = TransientLegitimacyProtocol(start=2)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    result = scheduler.run_until_legitimate(max_steps=1_000, confirm_steps=5)
    assert not result.converged
    assert result.terminated


def test_set_daemon_switches_adversary_mid_run(small_ring):
    protocol = CountdownProtocol(start=4)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=CentralDaemon(policy="round_robin"),
        configuration=protocol.initial_configuration(small_ring),
        seed=0,
    )
    scheduler.step()
    scheduler.set_daemon(SynchronousDaemon())
    record = scheduler.step()
    assert scheduler.daemon.name == "synchronous"
    assert len(record.executed) == small_ring.n  # everyone fires at once now


def test_frozen_nodes_are_excluded_until_unfrozen(small_ring):
    protocol = CountdownProtocol(start=2)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
    )
    scheduler.freeze((0, 1))
    assert scheduler.frozen_nodes == frozenset({0, 1})
    assert not scheduler.is_enabled(0)  # consistent with enabled_actions()
    assert 0 not in scheduler.enabled_nodes()
    record = scheduler.step()
    executed = {node for node, _ in record.executed}
    assert executed.isdisjoint({0, 1})
    scheduler.unfreeze((0,))
    record = scheduler.step()
    assert 0 in {node for node, _ in record.executed}
    with pytest.raises(SchedulingError):
        scheduler.freeze((99,))


def test_set_network_rebuilds_actions_and_reinitializes(small_ring):
    protocol = CountdownProtocol(start=3)
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=SynchronousDaemon(),
        configuration=protocol.initial_configuration(small_ring),
        seed=5,
    )
    edges = set(small_ring.edges()) | {(0, 3)}
    chord = RootedNetwork(small_ring.n, edges, root=small_ring.root, name="ring+chord")
    scheduler.set_network(chord, reinitialize=(0, 3))
    assert scheduler.network is chord
    # Reinitialized nodes carry domain-valid states for the new network.
    for node in (0, 3):
        assert 0 <= scheduler.configuration.get(node, "c") <= 3
    assert scheduler.run(max_steps=100).terminated


def test_set_network_rejects_resizing_or_rerooting(small_ring):
    protocol = CountdownProtocol()
    scheduler = Scheduler(small_ring, protocol, seed=0)
    bigger = generators.ring(small_ring.n + 2)
    with pytest.raises(SchedulingError):
        scheduler.set_network(bigger)
    rerooted = small_ring.with_root(1)
    with pytest.raises(SchedulingError):
        scheduler.set_network(rerooted)
