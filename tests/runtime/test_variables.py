"""Unit tests for shared-variable declarations and bit accounting."""

from __future__ import annotations

import random

import pytest

from repro.graphs import generators
from repro.runtime.variables import (
    VariableSpec,
    bits_for_values,
    enum_variable,
    int_variable,
    map_variable,
    pointer_variable,
)


def test_bits_for_values():
    assert bits_for_values(1) == 0
    assert bits_for_values(2) == 1
    assert bits_for_values(3) == 2
    assert bits_for_values(8) == 3
    assert bits_for_values(9) == 4
    assert bits_for_values(0) == 0


def test_int_variable_initial_and_bits():
    network = generators.ring(8)
    spec = int_variable("x", 0, lambda net, node: net.n - 1, initial=3)
    assert spec.initial(network, 0) == 3
    assert spec.bits(network, 0) == 3  # 8 values -> 3 bits
    assert spec.space_bits(network, 0) == 3


def test_int_variable_constant_high_and_callable_initial():
    network = generators.ring(4)
    spec = int_variable("x", 1, 4, initial=lambda net, node: node + 1)
    assert spec.initial(network, 2) == 3
    assert spec.bits(network, 2) == 2


def test_int_variable_random_stays_in_domain():
    network = generators.ring(8)
    spec = int_variable("x", 0, lambda net, node: net.n - 1)
    rng = random.Random(1)
    values = {spec.random(network, 0, rng) for _ in range(200)}
    assert values <= set(range(8))
    assert len(values) > 1


def test_enum_variable():
    network = generators.ring(4)
    spec = enum_variable("state", ("a", "b", "c"), initial="b")
    assert spec.initial(network, 1) == "b"
    assert spec.bits(network, 1) == 2
    rng = random.Random(3)
    assert {spec.random(network, 1, rng) for _ in range(100)} == {"a", "b", "c"}


def test_enum_variable_default_initial_is_first_value():
    spec = enum_variable("state", ("x", "y"))
    assert spec.initial(generators.ring(3), 0) == "x"


def test_enum_variable_requires_values():
    with pytest.raises(ValueError):
        enum_variable("state", ())


def test_pointer_variable_domain_and_bits():
    network = generators.star(5)  # hub has degree 4
    spec = pointer_variable("par", allow_none=True)
    assert spec.initial(network, 0) is None
    assert spec.bits(network, 0) == bits_for_values(5)
    assert spec.bits(network, 1) == 1  # one neighbor + None
    rng = random.Random(5)
    values = {spec.random(network, 0, rng) for _ in range(200)}
    assert values <= {None, 1, 2, 3, 4}
    assert None in values


def test_pointer_variable_without_none():
    network = generators.ring(5)
    spec = pointer_variable("par", allow_none=False)
    assert spec.initial(network, 0) in network.neighbors(0)
    rng = random.Random(5)
    assert None not in {spec.random(network, 0, rng) for _ in range(100)}


def test_map_variable_initial_covers_all_neighbors():
    network = generators.star(6)
    spec = map_variable("pi", 0, lambda net, node: net.n - 1, initial_value=0)
    labels = spec.initial(network, 0)
    assert set(labels) == set(network.neighbors(0))
    assert all(value == 0 for value in labels.values())


def test_map_variable_bits_scale_with_degree():
    network = generators.star(9)
    spec = map_variable("pi", 0, lambda net, node: net.n - 1)
    hub_bits = spec.bits(network, 0)
    leaf_bits = spec.bits(network, 1)
    assert hub_bits == network.degree(0) * bits_for_values(9)
    assert leaf_bits == 1 * bits_for_values(9)


def test_map_variable_random_keys_and_range():
    network = generators.ring(6)
    spec = map_variable("pi", 0, 5)
    rng = random.Random(7)
    labels = spec.random(network, 2, rng)
    assert set(labels) == set(network.neighbors(2))
    assert all(0 <= value <= 5 for value in labels.values())


def test_variable_spec_is_frozen():
    spec = VariableSpec("x", lambda n, p: 0, lambda n, p, r: 0, lambda n, p: 1)
    with pytest.raises(AttributeError):
        spec.name = "y"  # type: ignore[misc]
