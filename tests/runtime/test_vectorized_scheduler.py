"""The vectorized synchronous engine: lockstep fidelity + fallback proofs.

``VectorizedScheduler`` only overrides the execution seams of the base
scheduler, so the contract is *byte-identical step records* whenever the fast
path runs -- and graceful per-node fallback (same records, ``fast_steps`` 0)
whenever its preconditions fail.  Both halves are asserted here; the
cross-engine registry/row equivalence lives in
``tests/api/test_engine_equivalence.py``.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.runtime import vectorized as vectorized_module
from repro.runtime.daemon import CentralDaemon, SynchronousDaemon
from repro.runtime.scheduler import Scheduler
from repro.runtime.vectorized import VectorizedScheduler
from repro.substrates.dijkstra_ring import DijkstraTokenRing
from repro.substrates.spanning_tree import BFSSpanningTree


def _bfs_pair(n: int = 14, seed: int = 7, graph_seed: int = 2, **kwargs):
    network = generators.random_connected(n, seed=graph_seed)
    protocol_a, protocol_b = BFSSpanningTree(), BFSSpanningTree()
    config = protocol_a.random_configuration(network, seed=seed)
    base = Scheduler(
        network,
        protocol_a,
        daemon=SynchronousDaemon(),
        seed=seed,
        configuration=config.copy(),
        **kwargs,
    )
    fast = VectorizedScheduler(
        network,
        protocol_b,
        daemon=SynchronousDaemon(),
        seed=seed,
        configuration=config.copy(),
        **kwargs,
    )
    return base, fast


def _assert_lockstep(base: Scheduler, fast: Scheduler, max_steps: int = 200) -> int:
    """Drive both schedulers in lockstep; return the number of steps taken."""
    steps = 0
    for _ in range(max_steps):
        assert base.enabled_nodes() == fast.enabled_nodes()
        record_a, record_b = base.step(), fast.step()
        if record_a is None or record_b is None:
            assert record_a is None and record_b is None
            break
        assert record_a.executed == record_b.executed
        assert [
            (move.node, move.action, move.layer, move.changes)
            for move in record_a.moves
        ] == [
            (move.node, move.action, move.layer, move.changes)
            for move in record_b.moves
        ]
        assert base.configuration == fast.configuration
        steps += 1
    return steps


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_bfs_lockstep_identical_from_random_configurations(seed) -> None:
    base, fast = _bfs_pair(seed=seed)
    steps = _assert_lockstep(base, fast)
    assert fast.fast_steps == steps  # every step went through the kernels


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_dijkstra_ring_lockstep_identical(seed) -> None:
    network = generators.ring(9)
    protocol_a, protocol_b = DijkstraTokenRing(), DijkstraTokenRing()
    config = protocol_a.random_configuration(network, seed=seed)
    base = Scheduler(
        network, protocol_a, daemon=SynchronousDaemon(), seed=seed,
        configuration=config.copy(),
    )
    fast = VectorizedScheduler(
        network, protocol_b, daemon=SynchronousDaemon(), seed=seed,
        configuration=config.copy(),
    )
    # The token ring never terminates; a fixed window is the comparison.
    for _ in range(30):
        assert base.enabled_nodes() == fast.enabled_nodes()
        record_a, record_b = base.step(), fast.step()
        assert record_a is not None and record_b is not None
        assert record_a.executed == record_b.executed
        assert base.configuration == fast.configuration
    assert fast.fast_steps == 30


def test_kernel_less_protocol_falls_back_permanently() -> None:
    """DFTNO registers no batch kernels: per-node path, identical behavior."""
    network = generators.random_connected(10, seed=3)
    protocol_a, protocol_b = build_dftno(), build_dftno()
    config = protocol_a.random_configuration(network, seed=5)
    base = Scheduler(
        network, protocol_a, daemon=SynchronousDaemon(), seed=5,
        configuration=config.copy(),
    )
    fast = VectorizedScheduler(
        network, protocol_b, daemon=SynchronousDaemon(), seed=5,
        configuration=config.copy(),
    )
    steps = _assert_lockstep(base, fast, max_steps=400)
    assert steps > 0
    assert fast.fast_steps == 0
    assert not fast.vector_active


def test_non_synchronous_daemon_uses_per_node_path() -> None:
    base, fast = _bfs_pair()
    base.set_daemon(CentralDaemon())
    fast.set_daemon(CentralDaemon())
    steps = _assert_lockstep(base, fast)
    assert steps > 0
    assert fast.fast_steps == 0
    assert not fast.vector_active  # per step: the machinery itself is fine


def test_daemon_switch_mid_run_reengages_fast_path() -> None:
    base, fast = _bfs_pair(n=16)
    for _ in range(2):
        assert base.step() is not None and fast.step() is not None
    assert fast.fast_steps == 2
    base.set_daemon(CentralDaemon())
    fast.set_daemon(CentralDaemon())
    for _ in range(3):
        record_a, record_b = base.step(), fast.step()
        assert (record_a is None) == (record_b is None)
        if record_a is not None:
            assert record_a.executed == record_b.executed
    assert fast.fast_steps == 2  # central steps took the per-node path
    base.set_daemon(SynchronousDaemon())
    fast.set_daemon(SynchronousDaemon())
    before = fast.fast_steps
    steps = _assert_lockstep(base, fast)
    assert base.configuration == fast.configuration
    if steps:  # anything left to do re-engaged the kernels
        assert fast.fast_steps == before + steps


def test_frozen_nodes_never_execute_on_the_fast_path() -> None:
    base, fast = _bfs_pair(n=12)
    frozen = [1, 4]
    base.freeze(frozen)
    fast.freeze(frozen)
    steps = _assert_lockstep(base, fast)
    assert fast.fast_steps == steps
    base.unfreeze(frozen)
    fast.unfreeze(frozen)
    _assert_lockstep(base, fast)
    assert base.configuration == fast.configuration


def test_set_configuration_rebuilds_the_view() -> None:
    base, fast = _bfs_pair(n=12)
    _assert_lockstep(base, fast, max_steps=2)
    replacement = BFSSpanningTree().random_configuration(
        generators.random_connected(12, seed=2), seed=99
    )
    base.set_configuration(replacement.copy())
    fast.set_configuration(replacement.copy())
    steps = _assert_lockstep(base, fast)
    assert steps > 0
    assert base.configuration == fast.configuration


def test_numpy_absent_falls_back(monkeypatch) -> None:
    monkeypatch.setattr(vectorized_module, "HAVE_NUMPY", False)
    base, fast = _bfs_pair()
    steps = _assert_lockstep(base, fast)
    assert steps > 0
    assert fast.fast_steps == 0


def test_guard_locality_debugging_disables_the_fast_path() -> None:
    base, fast = _bfs_pair(check_guard_locality=True)
    steps = _assert_lockstep(base, fast)
    assert steps > 0
    assert fast.fast_steps == 0


def test_engine_without_numpy_raises_engine_unavailable(monkeypatch) -> None:
    import repro.runtime.arrayview as arrayview_module
    from repro.api import run
    from repro.api.spec import NetworkSpec, RunSpec
    from repro.errors import EngineUnavailableError

    monkeypatch.setattr(arrayview_module, "HAVE_NUMPY", False)
    spec = RunSpec(
        engine="scheduler-vectorized",
        protocol="stno-bfs",
        network=NetworkSpec(family="random_connected", size=8, seed=1),
        seed=1,
    )
    with pytest.raises(EngineUnavailableError, match=r"pip install \.\[vectorized\]"):
        run(spec)
