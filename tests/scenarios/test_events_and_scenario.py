"""Event vocabulary: each event perturbs a running scheduler as declared."""

from __future__ import annotations

import random

import pytest

from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.runtime.daemon import AdversarialDaemon, make_daemon
from repro.runtime.scheduler import Scheduler
from repro.scenarios.events import (
    CorruptionBurst,
    CrashRejoin,
    DaemonSwitch,
    LinkChange,
    MultiCrash,
)
from repro.scenarios.scenario import Scenario, TimedEvent


@pytest.fixture
def stabilized_scheduler():
    network = generators.random_connected(8, extra_edge_probability=0.3, seed=11)
    protocol = build_dftno()
    scheduler = Scheduler(network, protocol, daemon=make_daemon("central"), seed=3)
    result = scheduler.run_until_legitimate(max_steps=50_000)
    assert result.converged
    return scheduler


def test_corruption_burst_disturbs_and_reports_nodes(stabilized_scheduler):
    rng = random.Random(5)
    before = stabilized_scheduler.configuration.copy()
    outcome = CorruptionBurst(node_fraction=0.5, variable_fraction=1.0).apply(
        stabilized_scheduler, rng
    )
    assert outcome.kind == "corruption"
    assert outcome.applied
    diff = before.diff(stabilized_scheduler.configuration)
    assert tuple(sorted(diff)) == outcome.affected_nodes
    assert 1 <= len(outcome.affected_nodes) <= stabilized_scheduler.network.n


def test_corruption_burst_zero_fractions_touch_nothing(stabilized_scheduler):
    rng = random.Random(5)
    before = stabilized_scheduler.configuration.copy()
    outcome = CorruptionBurst(node_fraction=0.0, variable_fraction=0.0).apply(
        stabilized_scheduler, rng
    )
    assert outcome.affected_nodes == ()
    assert before == stabilized_scheduler.configuration


def test_crash_rejoin_freezes_then_releases(stabilized_scheduler):
    rng = random.Random(7)
    outcome = CrashRejoin(target="root", downtime_steps=5).apply(
        stabilized_scheduler, rng
    )
    assert outcome.kind == "crash"
    assert outcome.affected_nodes == (stabilized_scheduler.network.root,)
    assert outcome.steps_consumed <= 5
    assert stabilized_scheduler.frozen_nodes == frozenset()


def test_crash_rejoin_leaf_picks_degree_one_when_available():
    network = generators.star(6)  # hub 0 (root), leaves 1..5
    event = CrashRejoin(target="leaf")
    victim = event._pick_victim(network, random.Random(1))
    assert network.degree(victim) == 1
    assert victim != network.root


def test_crash_rejoin_validates_arguments():
    with pytest.raises(ValueError):
        CrashRejoin(target="hub")
    with pytest.raises(ValueError):
        CrashRejoin(downtime_steps=-1)


def test_frozen_node_is_never_selected(stabilized_scheduler):
    scheduler = stabilized_scheduler
    victim = scheduler.network.root
    scheduler.freeze((victim,))
    for _ in range(20):
        record = scheduler.step()
        if record is None:
            break
        assert victim not in [node for node, _ in record.executed]
    scheduler.unfreeze((victim,))
    assert scheduler.frozen_nodes == frozenset()


def test_multi_crash_freezes_the_set_simultaneously():
    """During the downtime *every* victim is frozen at once (correlated loss)."""
    network = generators.random_connected(9, extra_edge_probability=0.3, seed=11)
    scheduler = Scheduler(network, build_dftno(), daemon=make_daemon("central"), seed=3)

    witnessed: list[frozenset[int]] = []
    original_step = scheduler.step

    def spying_step():
        witnessed.append(scheduler.frozen_nodes)
        return original_step()

    scheduler.step = spying_step
    outcome = MultiCrash(fraction=0.4, downtime_steps=6).apply(
        scheduler, random.Random(5)
    )
    assert outcome.kind == "multi_crash"
    assert outcome.applied
    assert len(outcome.affected_nodes) == max(1, round(0.4 * (network.n - 1)))
    assert network.root not in outcome.affected_nodes  # include_root defaults off
    victims = frozenset(outcome.affected_nodes)
    assert witnessed and all(frozen == victims for frozen in witnessed)
    assert scheduler.frozen_nodes == frozenset()  # everyone rejoined


def test_multi_crash_rejoins_with_domain_valid_states(stabilized_scheduler):
    rng = random.Random(9)
    outcome = MultiCrash(fraction=0.5, downtime_steps=4, include_root=True).apply(
        stabilized_scheduler, rng
    )
    protocol = stabilized_scheduler.protocol
    network = stabilized_scheduler.network
    for victim in outcome.affected_nodes:
        state = stabilized_scheduler.configuration.state_of(victim)
        assert set(state) == set(protocol.variable_names(network, victim))


def test_multi_crash_validates_arguments():
    with pytest.raises(ValueError):
        MultiCrash(fraction=0.0)
    with pytest.raises(ValueError):
        MultiCrash(fraction=1.5)
    with pytest.raises(ValueError):
        MultiCrash(downtime_steps=-1)


def test_link_change_add_and_remove_keep_connectivity(stabilized_scheduler):
    scheduler = stabilized_scheduler
    rng = random.Random(9)
    edges_before = scheduler.network.num_edges()

    added = LinkChange(mode="add").apply(scheduler, rng)
    assert added.applied
    assert scheduler.network.num_edges() == edges_before + 1

    removed = LinkChange(mode="remove").apply(scheduler, rng)
    assert removed.applied
    assert scheduler.network.num_edges() == edges_before
    # The constructor of RootedNetwork validates connectivity; reaching here
    # means both changed networks were connected.
    assert len(removed.affected_nodes) == 2


def test_link_change_endpoints_get_domain_valid_states(stabilized_scheduler):
    scheduler = stabilized_scheduler
    rng = random.Random(13)
    outcome = LinkChange(mode="add").apply(scheduler, rng)
    protocol = scheduler.protocol
    for node in outcome.affected_nodes:
        declared = set(protocol.variable_names(scheduler.network, node))
        assert set(scheduler.configuration.variables_of(node)) == declared


def test_link_change_preserves_unaffected_port_orders():
    # Port orders are protocol semantics; a link change must only touch the
    # two endpoints' port lists, keeping every custom order verbatim.
    base = generators.ring(6)
    custom = base.with_port_orders({node: tuple(reversed(base.neighbors(node))) for node in base.nodes()})
    protocol = build_dftno()
    scheduler = Scheduler(custom, protocol, seed=1)
    outcome = LinkChange(mode="add").apply(scheduler, random.Random(4))
    assert outcome.applied
    u, v = outcome.affected_nodes
    changed = scheduler.network
    for node in changed.nodes():
        if node in (u, v):
            other = v if node == u else u
            assert changed.neighbors(node) == custom.neighbors(node) + (other,)
        else:
            assert changed.neighbors(node) == custom.neighbors(node)


def test_link_change_remove_on_tree_reports_not_applied():
    network = generators.kary_tree(7, 2)
    protocol = build_dftno()
    scheduler = Scheduler(network, protocol, seed=1)
    outcome = LinkChange(mode="remove").apply(scheduler, random.Random(2))
    assert not outcome.applied
    assert scheduler.network is network


def test_link_change_add_on_clique_reports_not_applied():
    network = generators.complete(5)
    protocol = build_dftno()
    scheduler = Scheduler(network, protocol, seed=1)
    outcome = LinkChange(mode="add").apply(scheduler, random.Random(2))
    assert not outcome.applied


def test_link_change_validates_mode():
    with pytest.raises(ValueError):
        LinkChange(mode="rewire")


def test_daemon_switch_swaps_the_adversary(stabilized_scheduler):
    outcome = DaemonSwitch(daemon="adversarial").apply(
        stabilized_scheduler, random.Random(3)
    )
    assert outcome.kind == "daemon_switch"
    assert isinstance(stabilized_scheduler.daemon, AdversarialDaemon)


def test_daemon_switch_none_restores_the_configured_daemon(stabilized_scheduler):
    original = stabilized_scheduler.daemon
    rng = random.Random(3)
    DaemonSwitch(daemon="adversarial").apply(stabilized_scheduler, rng)
    assert stabilized_scheduler.daemon is not original
    outcome = DaemonSwitch(daemon=None).apply(stabilized_scheduler, rng)
    assert stabilized_scheduler.daemon is original
    assert original.name in outcome.description


def test_scenario_validates_and_wraps_bare_events():
    scenario = Scenario(name="s", events=(CorruptionBurst(),))
    assert isinstance(scenario.events[0], TimedEvent)
    assert len(scenario) == 1
    with pytest.raises(ValueError):
        Scenario(name="", events=(CorruptionBurst(),))
    with pytest.raises(ValueError):
        Scenario(name="empty", events=())
    with pytest.raises(ValueError):
        TimedEvent(CorruptionBurst(), delay_steps=-1)


def test_scenario_of_applies_uniform_spacing():
    scenario = Scenario.of(
        "spaced", CorruptionBurst(), DaemonSwitch(), spacing_steps=7
    )
    assert [timed.delay_steps for timed in scenario.events] == [7, 7]
