"""ScenarioRunner recovery reports and the shipped scenario library."""

from __future__ import annotations

import pytest

from repro.analysis.recovery import (
    aggregate_event_recoveries,
    disturbed_fraction,
    disturbed_nodes,
)
from repro.core.dftno import build_dftno
from repro.core.stno import build_stno
from repro.graphs import generators
from repro.runtime.daemon import make_daemon
from repro.scenarios import (
    CorruptionBurst,
    Scenario,
    ScenarioRunner,
    TimedEvent,
    build_scenario,
    run_scenario,
    scenario_names,
)
from repro.scenarios.library import normalize_scenario


def _network(seed: int = 11):
    return generators.random_connected(8, extra_edge_probability=0.3, seed=seed)


def test_library_ships_the_documented_scenarios():
    names = scenario_names()
    for expected in ("single_burst", "periodic_burst", "cascade", "churn"):
        assert expected in names
        scenario = build_scenario(expected)
        assert scenario.name == expected
        assert len(scenario) >= 1


def test_unknown_scenario_is_rejected_with_choices():
    with pytest.raises(ValueError, match="cascade"):
        normalize_scenario("meteor_strike")


def test_runner_reports_one_recovery_per_event():
    scenario = build_scenario("periodic_burst")
    report = ScenarioRunner(
        _network(), build_dftno(), scenario, daemon=make_daemon("central"), seed=5
    ).run()
    assert report.initial_converged
    assert len(report.events) == len(scenario)
    for event in report.events:
        assert event.applied
        assert event.recovered
        assert event.recovery_steps is not None and event.recovery_steps >= 0
        assert 0.0 <= event.disturbed_fraction <= 1.0
        assert event.closure_violations == 0
    assert report.converged


def test_runner_is_deterministic_per_seed():
    scenario = build_scenario("cascade")
    kwargs = dict(daemon=make_daemon("distributed"), seed=21)
    row_a = ScenarioRunner(_network(), build_dftno(), scenario, **kwargs).run().as_row()
    row_b = ScenarioRunner(
        _network(), build_dftno(), scenario, daemon=make_daemon("distributed"), seed=21
    ).run().as_row()
    assert row_a == row_b
    row_c = ScenarioRunner(
        _network(), build_dftno(), scenario, daemon=make_daemon("distributed"), seed=22
    ).run().as_row()
    assert row_c != row_a


def test_churn_recovers_for_both_protocol_stacks():
    scenario = build_scenario("churn")
    for protocol in (build_dftno(), build_stno(tree="bfs")):
        report = run_scenario(
            _network(), protocol, scenario, daemon=make_daemon("distributed"), seed=3
        )
        assert report.converged, f"{protocol.name} did not recover from churn"
        # Link changes may legally be skipped on degenerate topologies, but on
        # this network both link events must have fired.
        kinds = [event.kind for event in report.applied_events]
        assert kinds.count("link_change") == 2
        assert kinds.count("crash") == 2


def test_as_row_aggregates_event_metrics():
    report = run_scenario(
        _network(),
        build_dftno(),
        build_scenario("single_burst"),
        daemon=make_daemon("central"),
        seed=9,
    )
    row = report.as_row()
    assert row["scenario"] == "single_burst"
    assert row["events"] == row["events_applied"] == 1
    assert row["converged"] is True
    assert row["recovery_steps"] == row["recovery_steps_max"]
    assert row["events_deadlocked"] == 0
    assert row["parameter"] == row["n"]


def test_custom_scenario_with_zero_disturbance_recovers_instantly():
    scenario = Scenario(
        name="noop_burst",
        events=(TimedEvent(CorruptionBurst(node_fraction=0.0), delay_steps=5),),
    )
    report = run_scenario(
        _network(), build_dftno(), scenario, daemon=make_daemon("central"), seed=2
    )
    event = report.events[0]
    assert event.disturbed == 0
    assert not event.broke_legitimacy
    assert event.recovered
    assert event.recovery_steps == 0


def test_disturbed_nodes_watches_only_requested_variables():
    network = _network()
    protocol = build_dftno()
    before = protocol.initial_configuration(network)
    after = before.copy()
    after.set(2, "tc_lvl", 99)  # substrate variable, not an orientation one
    assert disturbed_nodes(before, after) == (2,)
    assert disturbed_nodes(before, after, variables=("no_eta", "no_pi")) == ()
    assert disturbed_fraction(before, after, network.n) == pytest.approx(1 / network.n)


def test_aggregate_event_recoveries_groups_by_kind():
    reports = [
        run_scenario(
            _network(seed),
            build_dftno(),
            build_scenario("churn"),
            daemon=make_daemon("central"),
            seed=seed,
        )
        for seed in (1, 2)
    ]
    rows = aggregate_event_recoveries(reports)
    kinds = {row["kind"] for row in rows}
    assert "crash" in kinds and "link_change" in kinds
    for row in rows:
        assert row["recovered"] <= row["events"]
