"""Scenario-driven corruption fuzz of the spanning-tree substrates.

PR 2's deadlock hunt covered the token-circulation substrate (and found a
real wave deadlock: corrupted child pointers aiming back into the active
stack).  This module applies the same pressure to the BFS/DFS spanning-tree
layer, standalone and under the full STNO stack:

* uniform corruption bursts drawn by hypothesis,
* *targeted* corruption that rewires parent pointers to arbitrary neighbors
  (forming cycles -- the locally-undetectable shape analogous to the token
  bug) and falsifies BFS distances,
* library scenarios (corruption + crash + link dynamics) driven through the
  :class:`~repro.scenarios.runner.ScenarioRunner` against the bare substrate.

PR 4 extends the hunt to the two auxiliary substrates that never had one:
the PIF wave (tree networks; total bursts plus topology-preserving library
scenarios) and Dijkstra's K-state token ring (cycles; bursts under the
serial daemons the protocol is proved for, plus a no-deadlock check under
every daemon -- the ring always holds at least one privilege, so
termination is unconditionally a bug there).

The invariant everywhere: the protocol must *recover* within the standard
budget, and in particular must never **deadlock** -- terminate (no enabled
action) while the legitimacy predicate is false.  A budget overrun would be
flakiness; a deadlock is a protocol bug, which is why the assertions report
the two outcomes separately.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.stno import build_stno
from repro.graphs import generators
from repro.runtime.daemon import make_daemon
from repro.runtime.faults import corrupt_configuration
from repro.runtime.scheduler import Scheduler
from repro.scenarios.library import build_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.substrates.dijkstra_ring import DijkstraTokenRing
from repro.substrates.pif import PIFWave
from repro.substrates.spanning_tree import (
    BFSSpanningTree,
    DFSSpanningTree,
    VAR_BFS_DIST,
    VAR_BFS_PARENT,
    VAR_DFS_PARENT,
)

FUZZ_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

FAMILIES = ("ring", "random_connected", "random_tree", "complete")
DAEMONS = ("central", "distributed", "synchronous", "adversarial")


def _budget(network) -> int:
    return 500 * (network.n + network.num_edges()) + 3_000


def _recover(scheduler: Scheduler, context: str) -> None:
    result = scheduler.run_until_legitimate(
        max_steps=scheduler.steps_executed + _budget(scheduler.network)
    )
    assert not (result.terminated and not result.converged), (
        f"DEADLOCK (terminated while illegitimate) {context}"
    )
    assert result.converged, f"did not recover within budget {context}"


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    family=st.sampled_from(FAMILIES),
    n=st.integers(min_value=3, max_value=9),
    daemon=st.sampled_from(DAEMONS),
    node_fraction=st.sampled_from((0.3, 0.5, 1.0)),
)
@settings(**FUZZ_SETTINGS)
def test_spanning_tree_substrates_recover_from_corruption_bursts(
    seed, family, n, daemon, node_fraction
):
    """Uniform bursts on the bare BFS/DFS tree substrates never deadlock."""
    network = generators.family(family, n, seed=seed)
    protocol = BFSSpanningTree() if seed % 2 == 0 else DFSSpanningTree()
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon), seed=seed)
    context = f"({protocol.name} on {network.name}, daemon={daemon}, seed={seed})"
    _recover(scheduler, "initially " + context)
    rng = random.Random(seed + 1)
    corrupted = corrupt_configuration(
        scheduler.configuration,
        protocol,
        network,
        node_fraction=node_fraction,
        variable_fraction=1.0,
        rng=rng,
    )
    scheduler.set_configuration(corrupted)
    _recover(scheduler, f"after a {node_fraction:.0%} burst " + context)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    family=st.sampled_from(FAMILIES),
    n=st.integers(min_value=4, max_value=8),
    daemon=st.sampled_from(DAEMONS),
    tree=st.sampled_from(("bfs", "dfs")),
)
@settings(**FUZZ_SETTINGS)
def test_stno_recovers_from_cycle_forming_parent_corruption(
    seed, family, n, daemon, tree
):
    """Targeted tree-pointer corruption under the full STNO stack.

    Every non-root parent pointer is rewired to an *arbitrary* neighbor --
    which routinely forms parent cycles, the locally-undetectable corruption
    shape that deadlocked the token layer in PR 2 -- and BFS distances are
    falsified.  The stack must dissolve the cycles and re-stabilize.
    """
    network = generators.family(family, n, seed=seed)
    protocol = build_stno(tree=tree)
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon), seed=seed)
    context = f"(stno-{tree} on {network.name}, daemon={daemon}, seed={seed})"
    _recover(scheduler, "initially " + context)

    rng = random.Random(seed + 2)
    parent_variable = VAR_BFS_PARENT if tree == "bfs" else VAR_DFS_PARENT
    configuration = scheduler.configuration.copy()
    for node in network.nodes():
        if node == network.root:
            continue
        configuration.set(node, parent_variable, rng.choice(list(network.neighbors(node))))
        if tree == "bfs":
            configuration.set(node, VAR_BFS_DIST, rng.randrange(0, network.n))
    scheduler.set_configuration(configuration)
    _recover(scheduler, "after cycle-forming parent corruption " + context)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scenario_name=st.sampled_from(("single_burst", "periodic_burst", "churn")),
    tree=st.sampled_from(("bfs", "dfs")),
)
@settings(**FUZZ_SETTINGS)
def test_scenarios_against_bare_tree_substrate_never_deadlock(
    seed, scenario_name, tree
):
    """Library scenarios drive the bare substrate through the ScenarioRunner.

    Corruption, crash/rejoin and link dynamics applied directly to the
    spanning-tree protocols (``watch_variables=None``: disturbance over every
    substrate variable); every applied event must recover and none may
    deadlock.
    """
    network = generators.random_connected(7, extra_edge_probability=0.3, seed=seed)
    protocol = BFSSpanningTree() if tree == "bfs" else DFSSpanningTree()
    report = ScenarioRunner(
        network,
        protocol,
        build_scenario(scenario_name),
        daemon=make_daemon("distributed"),
        seed=seed,
        watch_variables=None,
    ).run()
    assert report.initial_converged
    deadlocked = [event.as_row() for event in report.events if event.deadlocked]
    assert not deadlocked, f"substrate deadlocked: {deadlocked}"
    unrecovered = [event.as_row() for event in report.applied_events if not event.recovered]
    assert not unrecovered, f"substrate failed to recover: {unrecovered}"


# ----------------------------------------------------------------------
# PIF waves (tree networks)
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=3, max_value=9),
    daemon=st.sampled_from(DAEMONS),
    node_fraction=st.sampled_from((0.3, 0.5, 1.0)),
)
@settings(**FUZZ_SETTINGS)
def test_pif_recovers_from_corruption_bursts(seed, n, daemon, node_fraction):
    """Uniform phase corruption on the PIF wave never deadlocks a tree."""
    network = generators.random_tree(n, seed=seed)
    protocol = PIFWave()
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon), seed=seed)
    context = f"(pif on {network.name}, daemon={daemon}, seed={seed})"
    _recover(scheduler, "initially " + context)
    corrupted = corrupt_configuration(
        scheduler.configuration,
        protocol,
        network,
        node_fraction=node_fraction,
        variable_fraction=1.0,
        rng=random.Random(seed + 1),
    )
    scheduler.set_configuration(corrupted)
    _recover(scheduler, f"after a {node_fraction:.0%} burst " + context)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scenario_name=st.sampled_from(("single_burst", "periodic_burst", "cascade")),
)
@settings(**FUZZ_SETTINGS)
def test_scenarios_against_bare_pif_never_deadlock(seed, scenario_name):
    """Topology-preserving library scenarios against the bare PIF wave.

    Link-changing scenarios are excluded by construction: PIF is only
    defined on trees, and the model's connectivity-preserving link changes
    (adding an edge, or removing the non-bridge it just added) cannot keep a
    tree a tree.
    """
    network = generators.random_tree(7, seed=seed)
    report = ScenarioRunner(
        network,
        PIFWave(),
        build_scenario(scenario_name),
        daemon=make_daemon("distributed"),
        seed=seed,
        watch_variables=None,
    ).run()
    assert report.initial_converged
    deadlocked = [event.as_row() for event in report.events if event.deadlocked]
    assert not deadlocked, f"PIF deadlocked: {deadlocked}"
    unrecovered = [event.as_row() for event in report.applied_events if not event.recovered]
    assert not unrecovered, f"PIF failed to recover: {unrecovered}"


# ----------------------------------------------------------------------
# Dijkstra's K-state token ring (cycle networks)
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=3, max_value=9),
    daemon=st.sampled_from(("central", "adversarial")),
    node_fraction=st.sampled_from((0.3, 0.5, 1.0)),
)
@settings(**FUZZ_SETTINGS)
def test_dijkstra_ring_recovers_from_counter_corruption(seed, n, daemon, node_fraction):
    """Counter bursts under the serial daemons the K-state proof covers."""
    network = generators.ring(n)
    protocol = DijkstraTokenRing()
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon), seed=seed)
    context = f"(dijkstra-ring n={n}, daemon={daemon}, seed={seed})"
    _recover(scheduler, "initially " + context)
    corrupted = corrupt_configuration(
        scheduler.configuration,
        protocol,
        network,
        node_fraction=node_fraction,
        variable_fraction=1.0,
        rng=random.Random(seed + 1),
    )
    scheduler.set_configuration(corrupted)
    _recover(scheduler, f"after a {node_fraction:.0%} burst " + context)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=3, max_value=8),
    daemon=st.sampled_from(DAEMONS),
)
@settings(**FUZZ_SETTINGS)
def test_dijkstra_ring_never_terminates_under_any_daemon(seed, n, daemon):
    """At least one processor is privileged in *every* K-state configuration,
    so termination (even transiently, even under non-serial daemons whose
    convergence is not claimed) is unconditionally a protocol bug."""
    network = generators.ring(n)
    protocol = DijkstraTokenRing()
    scheduler = Scheduler(network, protocol, daemon=make_daemon(daemon), seed=seed)
    corrupted = corrupt_configuration(
        scheduler.configuration,
        protocol,
        network,
        node_fraction=1.0,
        variable_fraction=1.0,
        rng=random.Random(seed + 1),
    )
    scheduler.set_configuration(corrupted)
    result = scheduler.run(max_steps=200)
    assert not result.terminated, (
        f"dijkstra-ring terminated (n={n}, daemon={daemon}, seed={seed})"
    )
