"""The fused-round protocol of the sharded engine (synchronous daemon).

Under the synchronous daemon the coordinator collapses each step's
``apply`` + ``execute`` round-trip pair into one ``round`` message: workers
fold the deltas, re-evaluate their frontier, speculatively execute every
enabled non-frozen block node and commit their own writes locally, and the
coordinator serves the subsequent selection from the stashed results.  The
speculation is only sound if every hazard path -- a mutation landing between
refresh and step, a daemon swap, a freeze -- falls back to a full mirror
reload, and if the owner-delta skipping never leaves a worker stale.  All of
that is pinned here against the single-process reference, inline and forked.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.runtime.daemon import CentralDaemon, SynchronousDaemon
from repro.runtime.scheduler import Scheduler
from repro.shard import ShardedScheduler
from repro.substrates.spanning_tree import BFSSpanningTree

fork_available = "fork" in multiprocessing.get_all_start_methods()
MODES = ("inline", "fork") if fork_available else ("inline",)


def _pair(protocol_factory, n, seed, mode, shards=2, fused=True, graph_seed=6):
    network = generators.random_connected(n, extra_edge_probability=0.3, seed=graph_seed)
    plain = Scheduler(
        network, protocol_factory(), daemon=SynchronousDaemon(), seed=seed
    )
    sharded = ShardedScheduler(
        network,
        protocol_factory(),
        daemon=SynchronousDaemon(),
        seed=seed,
        shards=shards,
        mode=mode,
        fused_rounds=fused,
    )
    return plain, sharded


def _lockstep(plain, sharded, max_steps=150):
    for _ in range(max_steps):
        assert plain.enabled_nodes() == sharded.enabled_nodes()
        record_plain, record_sharded = plain.step(), sharded.step()
        assert record_plain == record_sharded
        if record_plain is None:
            break
    assert plain.configuration == sharded.configuration
    assert plain.metrics == sharded.metrics


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("protocol_factory", (build_dftno, BFSSpanningTree))
def test_fused_rounds_match_single_process(mode, protocol_factory):
    plain, sharded = _pair(protocol_factory, n=10, seed=6, mode=mode)
    with sharded:
        _lockstep(plain, sharded)


@pytest.mark.parametrize("mode", MODES)
def test_fused_and_classic_protocols_agree(mode):
    """``fused_rounds=False`` must be a pure perf toggle, not a semantics one."""
    _, fused = _pair(build_dftno, n=10, seed=9, mode=mode, fused=True)
    _, classic = _pair(build_dftno, n=10, seed=9, mode=mode, fused=False)
    with fused, classic:
        for _ in range(150):
            record_fused, record_classic = fused.step(), classic.step()
            assert record_fused == record_classic
            if record_fused is None:
                break
        assert fused.configuration == classic.configuration


def test_non_synchronous_daemon_never_fuses():
    """The fused path needs whole-set selection; central daemon uses classic."""
    network = generators.random_connected(10, seed=6)
    plain = Scheduler(network, build_dftno(), daemon=CentralDaemon(), seed=6)
    with ShardedScheduler(
        network,
        build_dftno(),
        daemon=CentralDaemon(),
        seed=6,
        shards=2,
        mode="inline",
        fused_rounds=True,
    ) as sharded:
        _lockstep(plain, sharded)
        assert sharded._round_results is None


@pytest.mark.parametrize("mode", MODES)
def test_mutation_between_refresh_and_step_falls_back(mode):
    """An uncommitted speculative round must not survive a state mutation.

    ``enabled_nodes()`` triggers the fused refresh (workers speculate and
    self-commit); a scenario-style write landing before ``step()`` then
    invalidates the stashed results AND the workers' mirrors.  The engine
    must full-reload and still match a single-process run driven through
    the identical sequence.
    """
    plain, sharded = _pair(build_dftno, n=10, seed=7, mode=mode)
    with sharded:
        for round_index in range(60):
            plain.enabled_nodes(), sharded.enabled_nodes()
            if round_index % 3 == 1:
                # A scenario-style journal event between refresh and step:
                # mark_dirty re-journals the node without changing values, so
                # both runs stay value-identical while the sharded engine is
                # forced through its uncommitted-speculation guard.
                node = round_index % plain.network.n
                plain.configuration.mark_dirty(node)
                sharded.configuration.mark_dirty(node)
            record_plain, record_sharded = plain.step(), sharded.step()
            assert record_plain == record_sharded
            if record_plain is None:
                break
        assert plain.configuration == sharded.configuration


@pytest.mark.parametrize("mode", MODES)
def test_daemon_swap_between_refresh_and_step_falls_back(mode):
    """Selection no longer matching the stash must trigger the full rescan."""
    plain, sharded = _pair(build_dftno, n=10, seed=8, mode=mode)
    with sharded:
        for round_index in range(60):
            plain.enabled_nodes(), sharded.enabled_nodes()
            if round_index == 2:
                plain.set_daemon(CentralDaemon())
                sharded.set_daemon(CentralDaemon())
            elif round_index == 6:
                plain.set_daemon(SynchronousDaemon())
                sharded.set_daemon(SynchronousDaemon())
            record_plain, record_sharded = plain.step(), sharded.step()
            assert record_plain == record_sharded
            if record_plain is None:
                break
        assert plain.configuration == sharded.configuration


@pytest.mark.parametrize("mode", MODES)
def test_freeze_between_refresh_and_step_falls_back(mode):
    """Freezing after the speculative round shrinks the selection: rollback."""
    plain, sharded = _pair(build_dftno, n=10, seed=5, mode=mode)
    with sharded:
        frozen = False
        for round_index in range(80):
            plain.enabled_nodes(), sharded.enabled_nodes()
            if round_index == 1:
                target = plain.enabled_nodes()[0]
                plain.freeze([target]), sharded.freeze([target])
                frozen = True
            elif round_index == 4 and frozen:
                plain.unfreeze([target]), sharded.unfreeze([target])
            record_plain, record_sharded = plain.step(), sharded.step()
            assert record_plain == record_sharded
            if record_plain is None:
                break
        assert plain.configuration == sharded.configuration


@pytest.mark.skipif(not fork_available, reason="shm mirrors need fork mode")
def test_shared_memory_mirror_engages_and_cleans_up():
    """Fork mode on an encodable protocol ships deltas via the shm segment."""
    pytest.importorskip("numpy")
    plain, sharded = _pair(build_dftno, n=12, seed=4, mode="fork", shards=3)
    try:
        assert sharded._shm is not None, "shm mirror should engage (fork + numpy)"
        assert sharded._shm_view is not None
        _lockstep(plain, sharded)
        segment_name = sharded._shm.name
    finally:
        sharded.close()
    assert sharded._shm is None
    assert sharded._shm_view is None
    # The segment is unlinked: re-attaching by name must fail.
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment_name)


def test_shm_absent_without_numpy_or_inline(monkeypatch):
    """Inline mode never allocates a segment; without numpy neither does fork."""
    plain, sharded = _pair(build_dftno, n=8, seed=3, mode="inline")
    with sharded:
        assert sharded._shm is None
        _lockstep(plain, sharded)

    import repro.shard.coordinator as coordinator_module

    monkeypatch.setattr(coordinator_module, "HAVE_NUMPY", False)
    if fork_available:
        plain, sharded = _pair(build_dftno, n=8, seed=3, mode="fork")
        with sharded:
            assert sharded._shm is None
            _lockstep(plain, sharded)


@pytest.mark.parametrize("mode", MODES)
def test_set_network_mid_run_keeps_equivalence(mode):
    """Topology swaps rebuild mirrors (and drop shm) without diverging."""
    plain, sharded = _pair(build_dftno, n=10, seed=2, mode=mode)
    replacement = generators.random_connected(10, seed=12)
    with sharded:
        for _ in range(3):
            record_plain, record_sharded = plain.step(), sharded.step()
            assert record_plain == record_sharded
        plain.set_network(replacement)
        sharded.set_network(replacement)
        _lockstep(plain, sharded)
