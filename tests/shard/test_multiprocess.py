"""The forked-worker half of the sharded engine.

The algorithm is pinned inline (``test_sharded_scheduler.py``); these tests
cover what only real processes can get wrong: pipe framing, payload
pickling (node states, networks), worker lifecycle (spawn, reap, leak),
and crash reporting across the process boundary.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.api import NetworkSpec, RunSpec, run
from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.runtime.daemon import make_daemon
from repro.runtime.scheduler import Scheduler
from repro.scenarios.library import build_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.shard import ShardError, ShardedScheduler

fork_available = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(
    not fork_available, reason="fork start method unavailable on this platform"
)


def test_forked_run_matches_the_single_process_run():
    network = generators.random_connected(10, extra_edge_probability=0.3, seed=6)
    plain = Scheduler(
        network, build_dftno(), daemon=make_daemon("distributed"), seed=6
    )
    with ShardedScheduler(
        network,
        build_dftno(),
        daemon=make_daemon("distributed"),
        seed=6,
        shards=3,
        mode="fork",
    ) as sharded:
        for _ in range(120):
            assert plain.enabled_nodes() == sharded.enabled_nodes()
            record_plain, record_sharded = plain.step(), sharded.step()
            assert record_plain == record_sharded
            if record_plain is None:
                break
        assert plain.configuration == sharded.configuration
        assert plain.metrics == sharded.metrics


def test_workers_are_reaped_on_close():
    network = generators.random_connected(8, seed=2)
    sharded = ShardedScheduler(network, build_dftno(), seed=2, shards=2, mode="fork")
    sharded.step()
    processes = [handle.process for handle in sharded._shards]
    assert all(process.is_alive() for process in processes)
    sharded.close()
    assert all(not process.is_alive() for process in processes)


def test_worker_crash_surfaces_as_shard_error_with_traceback():
    network = generators.random_connected(8, seed=2)
    sharded = ShardedScheduler(network, build_dftno(), seed=2, shards=2, mode="fork")
    try:
        sharded.step()
        with pytest.raises(ShardError, match="worker traceback"):
            sharded._command({0: ("no-such-command",)})
    finally:
        sharded.close()


def test_registry_engine_defaults_to_processes_and_matches_scheduler_rows():
    """`repro.api.run(RunSpec(engine="scheduler-sharded", shards=k))` end to end."""
    rows = {}
    for engine, shards in (
        ("scheduler", None),
        ("scheduler-sharded", 2),
        ("scheduler-sharded", 4),
    ):
        spec = RunSpec(
            engine=engine,
            protocol="stno-bfs",
            network=NetworkSpec(family="random_connected", size=9, seed=8),
            daemon="distributed",
            seed=21,
            shards=shards,
        )
        rows[(engine, shards)] = run(spec).row
    assert rows[("scheduler", None)] == rows[("scheduler-sharded", 2)]
    assert rows[("scheduler", None)] == rows[("scheduler-sharded", 4)]
    assert rows[("scheduler", None)]["converged"]


def test_dynamic_topology_scenario_through_forked_workers():
    """churn exercises set_network: networks and rebuilt ghosts cross the pipe."""
    reports = {}
    for key, factory in (
        ("plain", None),
        ("sharded", None),
    ):
        network = generators.random_connected(8, extra_edge_probability=0.3, seed=3)
        if key == "sharded":
            from functools import partial

            factory = partial(ShardedScheduler, shards=3, mode="fork")
        reports[key] = ScenarioRunner(
            network,
            build_dftno(),
            build_scenario("churn"),
            daemon=make_daemon("distributed"),
            seed=7,
            scheduler_factory=factory,
        ).run()
    assert reports["plain"].as_row() == reports["sharded"].as_row()
    assert reports["plain"].events == reports["sharded"].events


def test_blackout_scenario_routes_multi_crash_across_shards():
    """MultiCrash victims span blocks; rejoin states route to owners + ghosts."""
    reports = {}
    for incremental, factory in ((True, None), (None, "sharded")):
        network = generators.random_connected(9, extra_edge_probability=0.3, seed=5)
        if factory == "sharded":
            from functools import partial

            factory = partial(ShardedScheduler, shards=3, mode="fork")
        reports[incremental] = ScenarioRunner(
            network,
            build_dftno(),
            build_scenario("blackout"),
            daemon=make_daemon("distributed"),
            seed=11,
            scheduler_factory=factory,
        ).run()
    assert reports[True].as_row() == reports[None].as_row()
    assert {record.kind for record in reports[True].events} == {"multi_crash"}
