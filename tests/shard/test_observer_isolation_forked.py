"""Observer fault isolation when the engine runs forked shard workers.

The single-process isolation contract (``dispatch_safely`` disables a raising
observer after one warning, the run is unaffected) is pinned in
``tests/obs/test_observer_isolation.py``.  These tests pin the part only real
processes can get wrong: an observer that raises *between* the coordinator's
worker round-trips must not wedge or kill the forked workers, desync the
pipe protocol, or change the measured result -- and a healthy observer (the
flight recorder) riding the same run must keep recording a verifiable log.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.api import NetworkSpec, RunSpec, run
from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.obs import FlightRecorder
from repro.replay import ReplayRun
from repro.runtime.daemon import make_daemon
from repro.runtime.observers import Observer, ObserverFailureWarning
from repro.runtime.scheduler import Scheduler
from repro.shard import ShardedScheduler

fork_available = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(
    not fork_available, reason="fork start method unavailable on this platform"
)


class _ExplodingOnStep(Observer):
    """Raises on the first step record, then (if ever called again) counts."""

    def __init__(self) -> None:
        self.calls = 0

    def on_step(self, source, record):
        self.calls += 1
        raise RuntimeError("observer bug in sharded run")


class _ExplodingOnExchange(Observer):
    """An exchange tap that raises mid-frontier-exchange."""

    wants_exchanges = True

    def __init__(self) -> None:
        self.calls = 0

    def on_exchange(self, source, exchange):
        self.calls += 1
        raise RuntimeError("exchange tap bug")


def test_forked_workers_survive_a_faulty_step_observer():
    network = generators.random_connected(10, extra_edge_probability=0.3, seed=6)
    plain = Scheduler(
        network, build_dftno(), daemon=make_daemon("distributed"), seed=6
    )
    clean = plain.run_until_legitimate(max_steps=500)
    bad = _ExplodingOnStep()
    with ShardedScheduler(
        network,
        build_dftno(),
        daemon=make_daemon("distributed"),
        seed=6,
        shards=3,
        mode="fork",
        observers=[bad],
    ) as sharded:
        with pytest.warns(ObserverFailureWarning, match="observer bug in sharded run"):
            watched = sharded.run_until_legitimate(max_steps=500)
        # The raise happened between worker round-trips; every forked worker
        # must still be alive and in protocol at the end of the run.
        assert all(handle.process.is_alive() for handle in sharded._shards)
        assert plain.configuration == sharded.configuration
        assert plain.metrics == sharded.metrics
    assert bad.calls == 1  # disabled after the first failure
    assert watched.converged == clean.converged
    assert watched.steps == clean.steps


def test_faulty_exchange_tap_does_not_break_recording(tmp_path):
    """A raising exchange tap is disabled; the flight recorder keeps going.

    Exchange dispatch happens inside ``_command`` -- the tightest spot in the
    coordinator/worker protocol -- so this is exactly where an unisolated
    observer failure would desync the pipes.  The healthy recorder riding the
    same list must still produce a log that replays byte-identically.
    """
    network = generators.random_connected(9, extra_edge_probability=0.3, seed=8)
    log_path = tmp_path / "forked.flight.jsonl"
    recorder = FlightRecorder(log_path)
    bad = _ExplodingOnExchange()
    with ShardedScheduler(
        network,
        build_dftno(),
        daemon=make_daemon("synchronous"),
        seed=8,
        shards=3,
        mode="fork",
        observers=[bad, recorder],
    ) as sharded:
        with pytest.warns(ObserverFailureWarning, match="exchange tap bug"):
            sharded.run_until_legitimate(max_steps=500)
        assert all(handle.process.is_alive() for handle in sharded._shards)
    recorder.close()
    assert bad.calls == 1
    report = ReplayRun(log_path).run()
    assert report.verified, report.divergence and report.divergence.format()


def test_sharded_engine_row_is_unchanged_by_a_faulty_observer():
    spec = RunSpec(
        engine="scheduler-sharded",
        protocol="stno-bfs",
        network=NetworkSpec(family="random_connected", size=9, seed=8),
        daemon="distributed",
        seed=21,
        shards=2,
    )
    clean = run(spec)
    with pytest.warns(ObserverFailureWarning):
        watched = run(spec, observers=[_ExplodingOnStep()])
    assert watched.row == clean.row
