"""Partitioner invariants: the properties the sharded engine's soundness rests on.

Every strategy, every topology family, every block count: the blocks must be
an exact disjoint cover of the nodes, the ghost sets must equal the cut
neighborhoods (a shard sees exactly the state its guards can read, nothing
more), and the whole construction must be a pure function of its inputs.
"""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.shard.partition import (
    PARTITION_STRATEGIES,
    Partition,
    PartitionError,
    normalize_strategy,
    partition_network,
)

FAMILIES = (
    ("ring", 12),
    ("random_tree", 13),
    ("random_connected", 14),
    ("complete", 9),
)


def _networks():
    return [generators.family(name, size, seed=5) for name, size in FAMILIES]


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
@pytest.mark.parametrize("k", (1, 2, 3, 4, 7))
def test_blocks_cover_every_node_exactly_once(strategy, k):
    for network in _networks():
        partition = partition_network(network, k, strategy=strategy)
        seen = [node for block in partition.blocks for node in block]
        assert sorted(seen) == list(network.nodes())
        assert len(seen) == len(set(seen))
        for block in partition.blocks:
            assert block  # never empty
        for node in network.nodes():
            owner = partition.owner_of(node)
            assert node in partition.block(owner)


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
@pytest.mark.parametrize("k", (1, 2, 3, 4))
def test_ghost_sets_equal_cut_neighborhoods(strategy, k):
    """ghosts(i) is exactly the set of outside nodes adjacent to block i."""
    for network in _networks():
        partition = partition_network(network, k, strategy=strategy)
        for index, block in enumerate(partition.blocks):
            members = set(block)
            expected = {
                neighbor
                for node in block
                for neighbor in network.neighbor_set(node)
                if neighbor not in members
            }
            assert partition.ghosts(index) == expected
            assert partition.scope(index) == members | expected
        # Every cut edge contributes both endpoints to each other's ghosts.
        for u, v in partition.cut_edges():
            assert u in partition.ghosts(partition.owner_of(v))
            assert v in partition.ghosts(partition.owner_of(u))


@pytest.mark.parametrize("strategy", ("bfs", "contiguous"))
def test_chunked_strategies_balance_block_sizes(strategy):
    network = generators.random_connected(17, seed=3)
    partition = partition_network(network, 4, strategy=strategy)
    sizes = sorted(len(block) for block in partition.blocks)
    assert max(sizes) - min(sizes) <= 1


@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_partitioning_is_deterministic(strategy):
    network = generators.random_connected(15, seed=9)
    first = partition_network(network, 3, strategy=strategy)
    second = partition_network(network, 3, strategy=strategy)
    assert first.blocks == second.blocks


def test_k_one_is_the_whole_network_with_no_ghosts():
    network = generators.random_connected(10, seed=1)
    partition = partition_network(network, 1)
    assert partition.blocks == (tuple(network.nodes()),)
    assert partition.ghosts(0) == frozenset()
    assert partition.cut_edges() == ()


def test_shard_count_clamps_to_node_count():
    network = generators.ring(5)
    partition = partition_network(network, 40)
    assert partition.k == 5
    assert all(len(block) == 1 for block in partition.blocks)


def test_bfs_beats_contiguous_on_shuffled_ring_labels():
    """The BFS strategy exists to cut fewer edges than raw id ranges."""
    import random as stdlib_random

    rng = stdlib_random.Random(4)
    n = 24
    relabel = list(range(n))
    rng.shuffle(relabel)
    edges = [(relabel[i], relabel[(i + 1) % n]) for i in range(n)]
    network = generators.RootedNetwork(n, edges, root=relabel[0], name="shuffled-ring")
    bfs_cut = len(partition_network(network, 4, strategy="bfs").cut_edges())
    contiguous_cut = len(partition_network(network, 4, strategy="contiguous").cut_edges())
    # BFS chunks follow the cycle outward from the root (at most two arcs per
    # block), so the cut is bounded by 2 per block boundary; id ranges over
    # shuffled labels scatter across the ring.
    assert bfs_cut <= 2 * 4
    assert bfs_cut < contiguous_cut


def test_rebind_keeps_blocks_and_recomputes_ghosts():
    network = generators.ring(8)
    partition = partition_network(network, 2)
    # Add a chord: new cut edge if it crosses blocks.
    edges = set(network.edges()) | {(0, 5)}
    changed = generators.RootedNetwork(8, edges, root=0, name="ring+chord")
    rebound = partition.rebind(changed)
    assert rebound.blocks == partition.blocks
    owner_u, owner_v = rebound.owner_of(0), rebound.owner_of(5)
    if owner_u != owner_v:
        assert 5 in rebound.ghosts(owner_u)
        assert 0 in rebound.ghosts(owner_v)


def test_validation_errors():
    network = generators.ring(6)
    with pytest.raises(PartitionError):
        partition_network(network, 0)
    with pytest.raises(PartitionError):
        normalize_strategy("voronoi")
    with pytest.raises(PartitionError):
        Partition(network=network, blocks=((0, 1), (1, 2, 3, 4, 5)), strategy="bfs")
    with pytest.raises(PartitionError):
        Partition(network=network, blocks=((0, 1, 2), (3, 4)), strategy="bfs")
    with pytest.raises(PartitionError):
        partition_network(network, 2).rebind(generators.ring(7))
