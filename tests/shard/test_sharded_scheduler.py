"""ShardedScheduler semantics, driven through the inline harness.

The inline harness runs the *same* ShardWorker objects and the same message
protocol as the forked processes (``tests/shard/test_multiprocess.py`` covers
the process half), so these tests pin the sharded algorithm itself: lockstep
equality with the single-process incremental core, the k=1 degeneracy, and
correct routing of every mid-run mutation path.
"""

from __future__ import annotations

import pytest

from repro.core.dftno import build_dftno
from repro.graphs import generators
from repro.runtime.daemon import make_daemon
from repro.runtime.scheduler import Scheduler
from repro.shard import ShardError, ShardedScheduler
from repro.substrates.spanning_tree import BFSSpanningTree


def _pair(n=10, seed=4, daemon="distributed", shards=3, **kwargs):
    network = generators.random_connected(n, extra_edge_probability=0.3, seed=seed)
    plain = Scheduler(
        network, build_dftno(), daemon=make_daemon(daemon), seed=seed, incremental=True
    )
    sharded = ShardedScheduler(
        network,
        build_dftno(),
        daemon=make_daemon(daemon),
        seed=seed,
        shards=shards,
        mode="inline",
        **kwargs,
    )
    return plain, sharded


def _lockstep(plain, sharded, steps=150):
    for _ in range(steps):
        assert plain.enabled_nodes() == sharded.enabled_nodes()
        record_plain = plain.step()
        record_sharded = sharded.step()
        assert record_plain == record_sharded
        if record_plain is None:
            break
    assert plain.configuration == sharded.configuration
    assert plain.metrics == sharded.metrics
    assert plain.rounds_completed == sharded.rounds_completed


def test_k1_degenerates_to_the_plain_incremental_engine_byte_identically():
    """One block, no ghosts, no frontier exchange: the full single-core run."""
    plain, sharded = _pair(shards=1)
    with sharded:
        assert sharded.partition.k == 1
        assert sharded.partition.ghosts(0) == frozenset()
        result_plain = plain.run_until_legitimate(max_steps=60_000)
        result_sharded = sharded.run_until_legitimate(max_steps=60_000)
        assert result_plain.converged and result_sharded.converged
        assert result_plain.steps == result_sharded.steps
        assert result_plain.rounds == result_sharded.rounds
        assert result_plain.moves == result_sharded.moves
        assert result_plain.configuration == result_sharded.configuration
        assert (
            result_plain.first_legitimate_step == result_sharded.first_legitimate_step
        )
        assert plain.metrics == sharded.metrics


@pytest.mark.parametrize("daemon", ("central", "distributed", "synchronous", "adversarial"))
def test_lockstep_equality_every_daemon(daemon):
    plain, sharded = _pair(daemon=daemon)
    with sharded:
        _lockstep(plain, sharded)


@pytest.mark.parametrize("shards", (2, 3, 5))
def test_lockstep_equality_across_shard_counts(shards):
    plain, sharded = _pair(shards=shards)
    with sharded:
        _lockstep(plain, sharded)


@pytest.mark.parametrize("partition", ("bfs", "greedy", "contiguous"))
def test_lockstep_equality_is_partition_independent(partition):
    """The execution is a function of the spec, never of the block layout."""
    plain, sharded = _pair(partition=partition)
    with sharded:
        _lockstep(plain, sharded)


def test_set_configuration_routes_a_corruption_to_every_shard():
    plain, sharded = _pair()
    with sharded:
        for _ in range(30):
            plain.step()
            sharded.step()
        import random

        from repro.runtime.faults import corrupt_configuration

        corrupted = corrupt_configuration(
            plain.configuration,
            plain.protocol,
            plain.network,
            node_fraction=1.0,
            variable_fraction=1.0,
            rng=random.Random(13),
        )
        plain.set_configuration(corrupted)
        sharded.set_configuration(corrupted)
        _lockstep(plain, sharded, steps=60)


def test_replace_node_routes_to_owner_and_ghosting_shards():
    """A single-node rejoin state reaches its block and the boundary mirrors."""
    plain, sharded = _pair()
    with sharded:
        for _ in range(20):
            plain.step()
            sharded.step()
        victim = max(
            sharded.network.nodes(),
            key=lambda node: len(sharded.network.neighbor_set(node)),
        )
        import random

        fresh = plain.protocol.random_state(plain.network, victim, random.Random(99))
        plain.configuration.replace_node(victim, fresh)
        sharded.configuration.replace_node(victim, fresh)
        _lockstep(plain, sharded, steps=60)


def test_freeze_unfreeze_and_daemon_switch_stay_in_lockstep():
    plain, sharded = _pair()
    with sharded:
        frozen = (1, 4)
        plain.freeze(frozen)
        sharded.freeze(frozen)
        _lockstep(plain, sharded, steps=25)
        plain.unfreeze(frozen)
        sharded.unfreeze(frozen)
        plain.set_daemon(make_daemon("central"))
        sharded.set_daemon(make_daemon("central"))
        _lockstep(plain, sharded, steps=40)


def test_enabled_actions_reports_names_and_layers():
    _, sharded = _pair()
    with sharded:
        enabled = sharded.enabled_actions()
        assert enabled
        assert list(enabled) == sorted(enabled)
        for action in enabled.values():
            assert isinstance(action.name, str) and action.name
            assert isinstance(action.layer, str)


def test_is_enabled_matches_the_merged_enabled_set():
    _, sharded = _pair()
    with sharded:
        enabled = set(sharded.enabled_nodes())
        for node in sharded.network.nodes():
            assert sharded.is_enabled(node) == (node in enabled)


def test_close_is_idempotent_and_blocks_further_use():
    _, sharded = _pair()
    sharded.close()
    sharded.close()
    with pytest.raises(ShardError):
        sharded.step()


def test_unknown_mode_is_rejected():
    network = generators.ring(6)
    with pytest.raises(ShardError):
        ShardedScheduler(network, BFSSpanningTree(), seed=1, mode="threads")


def test_guard_locality_checking_reaches_the_workers():
    """check_guard_locality flows into worker-side guard evaluation."""
    plain, sharded = _pair(check_guard_locality=True)
    with sharded:
        assert all(
            handle.worker.check_guard_locality for handle in sharded._shards
        )
        _lockstep(plain, sharded, steps=30)
