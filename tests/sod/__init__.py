"""Test package."""
