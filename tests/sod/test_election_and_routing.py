"""Tests for ring leader election and chordal routing."""

from __future__ import annotations

import pytest

from repro.core.baseline import centralized_orientation
from repro.core.orientation import orient_with_dftno
from repro.errors import RoutingError, SimulationError
from repro.graphs import generators
from repro.graphs.properties import bfs_distances
from repro.sod.election import ring_election_oriented, ring_election_unoriented
from repro.sod.routing import ChordalRouter


# ----------------------------------------------------------------------
# Leader election
# ----------------------------------------------------------------------
def test_oriented_election_elects_highest_name():
    ring = generators.ring(9)
    orientation = centralized_orientation(ring)
    outcome = ring_election_oriented(ring, orientation)
    assert outcome.leader_identifier == ring.n - 1
    assert outcome.messages >= ring.n


def test_unoriented_election_elects_highest_identifier():
    ring = generators.ring(9)
    outcome = ring_election_unoriented(ring)
    assert outcome.leader_identifier == ring.n - 1


def test_unoriented_election_with_custom_identifiers():
    ring = generators.ring(6)
    identifiers = {0: 17, 1: 3, 2: 99, 3: 8, 4: 25, 5: 41}
    outcome = ring_election_unoriented(ring, identifiers)
    assert outcome.leader_identifier == 99


def test_unoriented_election_rejects_duplicate_identifiers():
    ring = generators.ring(5)
    with pytest.raises(SimulationError):
        ring_election_unoriented(ring, {node: 1 for node in ring.nodes()})


def test_orientation_reduces_election_messages():
    for size in (8, 16, 32):
        ring = generators.ring(size)
        orientation = centralized_orientation(ring)
        oriented = ring_election_oriented(ring, orientation)
        unoriented = ring_election_unoriented(ring)
        assert oriented.messages < unoriented.messages


def test_election_requires_ring_topology():
    network = generators.path(5)
    with pytest.raises(SimulationError):
        ring_election_unoriented(network)
    with pytest.raises(SimulationError):
        ring_election_oriented(network, centralized_orientation(network))


def test_election_works_with_protocol_produced_orientation():
    ring = generators.ring(10)
    orientation = orient_with_dftno(ring, seed=4).orientation
    outcome = ring_election_oriented(ring, orientation)
    assert outcome.leader_identifier == ring.n - 1


# ----------------------------------------------------------------------
# Chordal routing
# ----------------------------------------------------------------------
@pytest.fixture
def routed_network():
    network = generators.random_connected(14, extra_edge_probability=0.3, seed=6)
    orientation = centralized_orientation(network)
    return network, ChordalRouter(network, orientation)


def test_route_delivers_between_all_pairs(routed_network):
    network, router = routed_network
    for source in network.nodes():
        for destination in network.nodes():
            if source == destination:
                continue
            route = router.route(source, destination)
            assert route.path[0] == source
            assert route.path[-1] == destination
            assert route.hops <= 2 * network.n


def test_route_path_follows_existing_links(routed_network):
    network, router = routed_network
    route = router.route(0, network.n - 1)
    for a, b in zip(route.path, route.path[1:]):
        assert network.has_edge(a, b)


def test_route_on_ring_follows_forward_direction():
    ring = generators.ring(8)
    router = ChordalRouter(ring, centralized_orientation(ring))
    route = router.route(0, 3)
    assert route.path == (0, 1, 2, 3)
    assert route.backtrack_hops == 0
    assert route.greedy_hops == 3


def test_route_by_name(routed_network):
    network, router = routed_network
    destination_name = router.orientation.name_of(5)
    route = router.route_by_name(2, destination_name)
    assert route.destination == 5


def test_route_hop_budget_enforced(routed_network):
    network, router = routed_network
    with pytest.raises(RoutingError):
        router.route(0, network.n - 1, max_hops=0)


def test_stretch_is_at_least_one(routed_network):
    network, router = routed_network
    for destination in list(network.nodes())[1:6]:
        assert router.stretch(0, destination) >= 1.0
    assert router.stretch(3, 3) == 1.0


def test_average_stretch_reasonable_on_rings():
    ring = generators.ring(10)
    router = ChordalRouter(ring, centralized_orientation(ring))
    # Forward-only greedy routing on a ring averages below 2x the shortest path.
    assert router.average_stretch() < 2.2


def test_average_stretch_with_sample(routed_network):
    network, router = routed_network
    sample = [(0, 5), (3, 9), (7, 1)]
    assert router.average_stretch(sample) >= 1.0
    assert router.average_stretch([]) == 1.0


def test_router_rejects_invalid_orientation(routed_network):
    network, _ = routed_network
    broken = centralized_orientation(network)
    broken.names[2] = broken.names[3]
    from repro.errors import SpecificationError

    with pytest.raises(SpecificationError):
        ChordalRouter(network, broken)


def test_preference_and_next_hop_are_local(routed_network):
    network, router = routed_network
    node = 0
    destination_name = router.orientation.name_of(network.n - 1)
    best = router.next_hop(node, destination_name)
    assert best in network.neighbors(node)
    assert router.next_hop(node, destination_name, excluded=frozenset(network.neighbors(node))) is None


def test_routing_with_protocol_produced_orientation():
    network = generators.random_connected(10, seed=11)
    orientation = orient_with_dftno(network, seed=12).orientation
    router = ChordalRouter(network, orientation)
    route = router.route(0, 7)
    assert route.path[-1] == 7
