"""Tests for DFS traversal and broadcast with/without a sense of direction."""

from __future__ import annotations

import pytest

from repro.core.baseline import centralized_orientation
from repro.errors import SpecificationError
from repro.graphs import generators
from repro.sod.traversal import (
    broadcast_with_sod,
    broadcast_without_sod,
    dfs_traversal_with_sod,
    dfs_traversal_without_sod,
)


@pytest.fixture
def dense_network():
    return generators.random_connected(12, extra_edge_probability=0.45, seed=9)


def test_traversal_without_sod_completes_on_trees_and_graphs(dense_network):
    for network in (generators.path(6), generators.kary_tree(7, 2), dense_network):
        outcome = dfs_traversal_without_sod(network)
        assert outcome.visited == network.n
        assert outcome.messages >= 2 * (network.n - 1)


def test_traversal_without_sod_costs_order_m(dense_network):
    outcome = dfs_traversal_without_sod(dense_network)
    assert outcome.messages >= dense_network.num_edges()
    assert outcome.messages <= 4 * dense_network.num_edges()


def test_traversal_with_sod_costs_exactly_two_tree_messages_per_edge(dense_network):
    orientation = centralized_orientation(dense_network)
    outcome = dfs_traversal_with_sod(dense_network, orientation)
    assert outcome.visited == dense_network.n
    assert outcome.messages == 2 * (dense_network.n - 1)


def test_traversal_with_sod_beats_unoriented_on_dense_networks(dense_network):
    orientation = centralized_orientation(dense_network)
    with_sod = dfs_traversal_with_sod(dense_network, orientation)
    without = dfs_traversal_without_sod(dense_network)
    assert with_sod.messages < without.messages


def test_traversal_with_sod_on_tree_matches_unoriented_tree_cost():
    tree = generators.kary_tree(7, 2)
    orientation = centralized_orientation(tree)
    with_sod = dfs_traversal_with_sod(tree, orientation)
    assert with_sod.messages == 2 * (tree.n - 1)


def test_traversal_with_sod_rejects_invalid_orientation(dense_network):
    orientation = centralized_orientation(dense_network)
    orientation.names[0] = orientation.names[1]  # break SP1
    with pytest.raises(SpecificationError):
        dfs_traversal_with_sod(dense_network, orientation)


def test_broadcast_without_sod_floods_all_edges(dense_network):
    outcome = broadcast_without_sod(dense_network)
    assert outcome.visited == dense_network.n
    # Flooding: one message over the root's links plus one per direction on the
    # rest, minus the ones suppressed at already-informed processors.
    assert outcome.messages >= dense_network.n - 1
    assert outcome.messages <= 2 * dense_network.num_edges()


def test_broadcast_with_sod_reaches_everyone_with_fewer_messages(dense_network):
    orientation = centralized_orientation(dense_network)
    with_sod = broadcast_with_sod(dense_network, orientation)
    without = broadcast_without_sod(dense_network)
    assert with_sod.visited == dense_network.n
    assert with_sod.messages <= without.messages


def test_broadcast_with_sod_on_complete_network_is_linear():
    network = generators.complete(10)
    orientation = centralized_orientation(network)
    outcome = broadcast_with_sod(network, orientation)
    assert outcome.messages == network.n - 1
    plain = broadcast_without_sod(network)
    assert plain.messages >= (network.n - 1) ** 2 / 2


def test_outcomes_report_rounds(dense_network):
    orientation = centralized_orientation(dense_network)
    assert dfs_traversal_with_sod(dense_network, orientation).rounds >= 2
    assert broadcast_without_sod(dense_network).rounds >= 2
    assert dfs_traversal_without_sod(dense_network).complete


def test_traversal_works_on_ring_topologies():
    ring = generators.ring(9)
    orientation = centralized_orientation(ring)
    assert dfs_traversal_with_sod(ring, orientation).messages == 2 * (ring.n - 1)
    assert dfs_traversal_without_sod(ring).visited == ring.n
