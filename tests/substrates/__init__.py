"""Test package."""
