"""Tests for the classic side substrates: Dijkstra's token ring and PIF waves."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.graphs import generators
from repro.runtime.daemon import CentralDaemon, DistributedDaemon, SynchronousDaemon
from repro.runtime.scheduler import Scheduler
from repro.substrates.dijkstra_ring import VAR_COUNTER, DijkstraTokenRing, ring_order
from repro.substrates.pif import BROADCAST, CLEAN, FEEDBACK, VAR_PHASE, PIFWave


# ----------------------------------------------------------------------
# Ring ordering helper
# ----------------------------------------------------------------------
def test_ring_order_starts_at_root_and_visits_all():
    network = generators.ring(7)
    order = ring_order(network)
    assert order[0] == network.root
    assert sorted(order) == list(network.nodes())
    # Consecutive processors must be neighbors.
    for a, b in zip(order, order[1:]):
        assert network.has_edge(a, b)


def test_ring_order_rejects_non_ring():
    with pytest.raises(ProtocolError):
        ring_order(generators.path(5))
    with pytest.raises(ProtocolError):
        ring_order(generators.complete(4))


# ----------------------------------------------------------------------
# Dijkstra's K-state token ring
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_dijkstra_ring_stabilizes_to_single_privilege(seed):
    network = generators.ring(7)
    protocol = DijkstraTokenRing()
    scheduler = Scheduler(network, protocol, daemon=CentralDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=10_000)
    assert result.converged
    assert len(protocol.privileged(network, result.configuration)) == 1


def test_dijkstra_ring_closure_keeps_single_privilege():
    network = generators.ring(6)
    protocol = DijkstraTokenRing()
    scheduler = Scheduler(network, protocol, daemon=CentralDaemon(), seed=5)
    scheduler.run_until_legitimate(max_steps=10_000)
    for _ in range(100):
        scheduler.step()
        assert len(protocol.privileged(network, scheduler.configuration)) == 1


def test_dijkstra_ring_never_deadlocks():
    network = generators.ring(5)
    protocol = DijkstraTokenRing()
    scheduler = Scheduler(network, protocol, daemon=DistributedDaemon(), seed=6)
    result = scheduler.run(max_steps=300)
    assert not result.terminated


def test_dijkstra_ring_every_processor_eventually_privileged():
    network = generators.ring(5)
    protocol = DijkstraTokenRing()
    scheduler = Scheduler(network, protocol, daemon=CentralDaemon("round_robin"), seed=7)
    scheduler.run_until_legitimate(max_steps=10_000)
    seen: set[int] = set()
    for _ in range(200):
        seen.update(protocol.privileged(network, scheduler.configuration))
        scheduler.step()
    assert seen == set(network.nodes())


def test_dijkstra_ring_counter_domain_respects_k():
    network = generators.ring(4)
    protocol = DijkstraTokenRing(k=3)
    config = protocol.random_configuration(network, seed=1)
    assert all(0 <= config.get(node, VAR_COUNTER) <= 2 for node in network.nodes())


def test_dijkstra_ring_rejects_non_ring_topology():
    protocol = DijkstraTokenRing()
    with pytest.raises(ProtocolError):
        Scheduler(generators.path(4), protocol, seed=1)


# ----------------------------------------------------------------------
# PIF waves on a rooted tree
# ----------------------------------------------------------------------
def test_pif_runs_repeated_waves_from_clean_state(small_tree):
    protocol = PIFWave()
    scheduler = Scheduler(
        small_tree,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(small_tree),
        seed=1,
        record_trace=True,
    )
    result = scheduler.run(max_steps=400)
    assert not result.terminated  # waves repeat forever
    root_starts = scheduler.trace.for_action(PIFWave.ACTION_ROOT_START)
    assert len(root_starts) >= 2


def test_pif_broadcast_reaches_leaves_before_feedback(small_tree):
    protocol = PIFWave()
    scheduler = Scheduler(
        small_tree,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(small_tree),
        seed=2,
        record_trace=True,
    )
    scheduler.run(max_steps=200)
    events = scheduler.trace.events()
    first_feedback = next(i for i, e in enumerate(events) if e.action == PIFWave.ACTION_FEEDBACK)
    broadcast_nodes = {e.node for e in events[:first_feedback] if e.action in
                       (PIFWave.ACTION_BROADCAST, PIFWave.ACTION_ROOT_START)}
    feedback_node = events[first_feedback].node
    assert feedback_node in broadcast_nodes  # it had been reached by the broadcast


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pif_recovers_from_arbitrary_state(small_tree, seed):
    protocol = PIFWave()
    scheduler = Scheduler(small_tree, protocol, daemon=DistributedDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=10_000)
    assert result.converged


def test_pif_legitimacy_rejects_child_ahead_of_parent(small_tree):
    protocol = PIFWave()
    config = protocol.initial_configuration(small_tree)
    config.set(3, VAR_PHASE, BROADCAST)  # a leaf broadcasting under a clean parent
    assert not protocol.legitimate(small_tree, config)
    config.set(3, VAR_PHASE, CLEAN)
    assert protocol.legitimate(small_tree, config)


def test_pif_legitimacy_rejects_feedback_root(small_tree):
    protocol = PIFWave()
    config = protocol.initial_configuration(small_tree)
    config.set(small_tree.root, VAR_PHASE, FEEDBACK)
    assert not protocol.legitimate(small_tree, config)


def test_pif_requires_tree_or_explicit_parents():
    ring = generators.ring(5)
    with pytest.raises(ProtocolError):
        Scheduler(ring, PIFWave(), seed=1)
    # With an explicit spanning tree of the ring it works.
    parents = {0: None, 1: 0, 2: 1, 3: 2, 4: 0}
    scheduler = Scheduler(ring, PIFWave(parents=parents), seed=1)
    result = scheduler.run_until_legitimate(max_steps=10_000)
    assert result.converged
