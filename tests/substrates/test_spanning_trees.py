"""Tests for the BFS and DFS spanning-tree substrates."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.graphs.properties import bfs_distances, is_spanning_tree, tree_height
from repro.runtime.daemon import CentralDaemon, DistributedDaemon, SynchronousDaemon
from repro.runtime.scheduler import Scheduler
from repro.substrates.spanning_tree import (
    VAR_BFS_DIST,
    VAR_BFS_PARENT,
    VAR_DFS_PARENT,
    BFSSpanningTree,
    DFSSpanningTree,
    dfs_tree_parents,
    tree_parents_from_configuration,
)
from repro.substrates.token_circulation import dfs_preorder
from tests.conftest import topologies_for_sweeps


# ----------------------------------------------------------------------
# BFS spanning tree
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bfs_tree_stabilizes_from_arbitrary_state(small_random, seed):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(small_random, protocol, daemon=DistributedDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=20_000)
    assert result.converged
    parents = protocol.parents(small_random, result.configuration)
    assert is_spanning_tree(small_random, parents)


def test_bfs_tree_distances_are_true_bfs_distances(small_random):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(small_random, protocol, seed=3)
    result = scheduler.run_until_legitimate(max_steps=20_000)
    truth = bfs_distances(small_random)
    for node in small_random.nodes():
        assert result.configuration.get(node, VAR_BFS_DIST) == truth[node]


def test_bfs_tree_is_silent_once_stable(small_random):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(small_random, protocol, seed=4)
    result = scheduler.run(max_steps=20_000)
    assert result.terminated  # no action enabled at the fixpoint
    assert protocol.legitimate(small_random, result.configuration)


def test_bfs_tree_height_matches_root_eccentricity(small_random):
    from repro.graphs.properties import radius_from_root

    protocol = BFSSpanningTree()
    scheduler = Scheduler(small_random, protocol, seed=5)
    result = scheduler.run_until_legitimate(max_steps=20_000)
    parents = protocol.parents(small_random, result.configuration)
    assert tree_height(small_random, parents) == radius_from_root(small_random)


@pytest.mark.parametrize("network", topologies_for_sweeps(), ids=lambda n: n.name)
def test_bfs_tree_on_topology_family(network):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(network, protocol, daemon=SynchronousDaemon(), seed=6)
    result = scheduler.run_until_legitimate(max_steps=20_000)
    assert result.converged
    assert protocol.is_spanning_tree(network, result.configuration)


def test_bfs_tree_children_map_consistency(small_random):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(small_random, protocol, seed=7)
    result = scheduler.run_until_legitimate(max_steps=20_000)
    children = protocol.children_map(small_random, result.configuration)
    parents = protocol.parents(small_random, result.configuration)
    for node, kids in children.items():
        for child in kids:
            assert parents[child] == node
    total_children = sum(len(kids) for kids in children.values())
    assert total_children == small_random.n - 1


def test_bfs_legitimacy_rejects_wrong_distance(small_ring):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(small_ring, protocol, seed=8)
    result = scheduler.run_until_legitimate(max_steps=20_000)
    config = result.configuration
    config.set(2, VAR_BFS_DIST, 0)
    assert not protocol.legitimate(small_ring, config)


def test_bfs_legitimacy_rejects_bad_parent(small_ring):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(small_ring, protocol, seed=9)
    result = scheduler.run_until_legitimate(max_steps=20_000)
    config = result.configuration
    config.set(3, VAR_BFS_PARENT, None)
    assert not protocol.legitimate(small_ring, config)


def test_tree_parents_from_configuration_helper(small_ring):
    protocol = BFSSpanningTree()
    scheduler = Scheduler(small_ring, protocol, seed=10)
    result = scheduler.run_until_legitimate(max_steps=20_000)
    parents = tree_parents_from_configuration(protocol, small_ring, result.configuration)
    assert parents == protocol.parents(small_ring, result.configuration)


# ----------------------------------------------------------------------
# Reference DFS-tree parents
# ----------------------------------------------------------------------
def test_dfs_tree_parents_match_preorder(figure_network):
    parents = dfs_tree_parents(figure_network)
    assert parents == {0: None, 1: 0, 2: 1, 3: 2, 4: 0}
    order = dfs_preorder(figure_network)
    for node in figure_network.nodes():
        if node != figure_network.root:
            assert order.index(parents[node]) < order.index(node)


def test_dfs_tree_parents_is_spanning_tree(small_random):
    parents = dfs_tree_parents(small_random)
    assert is_spanning_tree(small_random, parents)


# ----------------------------------------------------------------------
# DFS spanning tree maintained by the token circulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1])
def test_dfs_tree_protocol_converges_to_reference(small_random, seed):
    protocol = DFSSpanningTree()
    scheduler = Scheduler(small_random, protocol, daemon=DistributedDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=60_000)
    assert result.converged
    parents = protocol.parents(small_random, result.configuration)
    assert parents == dfs_tree_parents(small_random)


def test_dfs_tree_protocol_from_clean_state(figure_network):
    protocol = DFSSpanningTree()
    scheduler = Scheduler(
        figure_network,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(figure_network),
        seed=2,
    )
    result = scheduler.run_until_legitimate(max_steps=10_000)
    assert result.converged
    assert result.configuration.get(3, VAR_DFS_PARENT) == 2


def test_dfs_tree_exposes_token_layer_and_reference(small_ring):
    protocol = DFSSpanningTree()
    assert protocol.token_layer.name == "dftc"
    assert protocol.reference_parents(small_ring) == dfs_tree_parents(small_ring)
    assert protocol.parent_variable == VAR_DFS_PARENT
    assert len(protocol.layers()) == 2


def test_dfs_tree_variables_include_token_and_parent(small_ring):
    protocol = DFSSpanningTree()
    names = set(protocol.variable_names(small_ring, 1))
    assert VAR_DFS_PARENT in names
    assert "tc_st" in names
