"""Unit and behavioural tests for the depth-first token circulation substrate."""

from __future__ import annotations

import pytest

from repro.graphs import generators
from repro.runtime.configuration import Configuration
from repro.runtime.daemon import CentralDaemon, DistributedDaemon, SynchronousDaemon
from repro.runtime.processor import ProcessorView
from repro.runtime.scheduler import Scheduler
from repro.substrates import token_circulation as tc
from repro.substrates.token_circulation import (
    ACTIVE,
    WAIT,
    DepthFirstTokenCirculation,
    dfs_preorder,
)


# ----------------------------------------------------------------------
# The reference DFS preorder
# ----------------------------------------------------------------------
def test_dfs_preorder_on_figure_network(figure_network):
    # The figure's traversal order: r, b, d, c, a (node ids 0, 1, 2, 3, 4).
    assert dfs_preorder(figure_network) == [0, 1, 2, 3, 4]


def test_dfs_preorder_on_path_and_ring():
    assert dfs_preorder(generators.path(4)) == [0, 1, 2, 3]
    assert dfs_preorder(generators.ring(5)) == [0, 1, 2, 3, 4]


def test_dfs_preorder_respects_port_order():
    network = generators.star(4).with_port_orders({0: (3, 1, 2)})
    assert dfs_preorder(network) == [0, 3, 1, 2]


def test_dfs_preorder_visits_every_node_once(small_random):
    order = dfs_preorder(small_random)
    assert sorted(order) == list(small_random.nodes())


def test_dfs_preorder_single_node():
    assert dfs_preorder(generators.path(1)) == [0]


# ----------------------------------------------------------------------
# Variable declarations and clean initial state
# ----------------------------------------------------------------------
def test_variables_and_space(small_random):
    protocol = DepthFirstTokenCirculation()
    names = protocol.variable_names(small_random, 0)
    assert set(names) == {tc.VAR_STATE, tc.VAR_WAVE, tc.VAR_PARENT, tc.VAR_CHILD, tc.VAR_LEVEL}
    # O(log n) bits per processor: generously bounded by a small multiple.
    for node in small_random.nodes():
        assert protocol.space_bits(small_random, node) <= 6 * 10


def test_initial_configuration_is_all_waiting(small_random):
    protocol = DepthFirstTokenCirculation()
    config = protocol.initial_configuration(small_random)
    for node in small_random.nodes():
        assert config.get(node, tc.VAR_STATE) == WAIT
        assert config.get(node, tc.VAR_PARENT) is None
    assert protocol.legitimate(small_random, config)


# ----------------------------------------------------------------------
# One clean wave from the initial configuration
# ----------------------------------------------------------------------
def run_one_wave(network, daemon=None, max_steps=5_000):
    protocol = DepthFirstTokenCirculation()
    scheduler = Scheduler(
        network,
        protocol,
        daemon=daemon or CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(network),
        seed=1,
        record_trace=True,
    )
    start_wave = scheduler.configuration.get(network.root, tc.VAR_WAVE)
    # Run until the root has completed one full wave (flipped parity and waiting).
    def wave_done(s):
        return (
            s.configuration.get(network.root, tc.VAR_WAVE) != start_wave
            and s.configuration.get(network.root, tc.VAR_STATE) == WAIT
        )

    result = scheduler.run(max_steps=max_steps, stop_predicate=wave_done)
    assert result.converged, "the wave did not complete"
    return protocol, scheduler


def test_single_wave_visits_every_node_exactly_once(small_random):
    protocol, scheduler = run_one_wave(small_random)
    forwards = [
        event
        for event in scheduler.trace.events()
        if event.action in DepthFirstTokenCirculation.FORWARD_ACTIONS
    ]
    visited = [event.node for event in forwards]
    assert sorted(visited) == list(small_random.nodes())


def test_single_wave_visits_in_deterministic_dfs_order(figure_network):
    protocol, scheduler = run_one_wave(figure_network)
    forwards = [
        event.node
        for event in scheduler.trace.events()
        if event.action in DepthFirstTokenCirculation.FORWARD_ACTIONS
    ]
    assert forwards == dfs_preorder(figure_network)


def test_wave_records_traversal_parents(figure_network):
    protocol, scheduler = run_one_wave(figure_network)
    parents = DepthFirstTokenCirculation.traversal_parents(figure_network, scheduler.configuration)
    assert parents[0] is None
    assert parents[1] == 0
    assert parents[2] == 1
    assert parents[3] == 2
    assert parents[4] == 0


def test_at_most_one_token_holder_throughout_clean_execution(small_random):
    protocol = DepthFirstTokenCirculation()
    scheduler = Scheduler(
        small_random,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(small_random),
        seed=3,
    )
    for _ in range(300):
        if scheduler.step() is None:
            break
        holders = DepthFirstTokenCirculation.token_holders(small_random, scheduler.configuration)
        assert len(holders) <= 1


def test_circulation_never_terminates(small_ring):
    protocol = DepthFirstTokenCirculation()
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(small_ring),
        seed=4,
    )
    result = scheduler.run(max_steps=500)
    assert not result.terminated
    assert result.steps == 500


def test_waves_keep_alternating_parity(small_ring):
    protocol = DepthFirstTokenCirculation()
    scheduler = Scheduler(
        small_ring,
        protocol,
        daemon=CentralDaemon("round_robin"),
        configuration=protocol.initial_configuration(small_ring),
        seed=5,
        record_trace=True,
    )
    scheduler.run(max_steps=400)
    starts = [
        event
        for event in scheduler.trace.events()
        if event.action == DepthFirstTokenCirculation.ACTION_ROOT_START
    ]
    assert len(starts) >= 3
    parities = [event.changes[tc.VAR_WAVE][1] for event in starts if tc.VAR_WAVE in event.changes]
    assert all(parities[i] != parities[i + 1] for i in range(len(parities) - 1))


# ----------------------------------------------------------------------
# Self-stabilization from corrupted configurations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_stabilizes_from_arbitrary_state(small_random, seed):
    protocol = DepthFirstTokenCirculation()
    scheduler = Scheduler(small_random, protocol, daemon=DistributedDaemon(), seed=seed)
    result = scheduler.run_until_legitimate(max_steps=30_000)
    assert result.converged


def test_stabilizes_under_synchronous_daemon(small_ring):
    protocol = DepthFirstTokenCirculation()
    scheduler = Scheduler(small_ring, protocol, daemon=SynchronousDaemon(), seed=9)
    result = scheduler.run_until_legitimate(max_steps=30_000)
    assert result.converged


def test_legitimacy_rejects_orphan_active_processor(small_ring):
    protocol = DepthFirstTokenCirculation()
    config = protocol.initial_configuration(small_ring)
    config.set(2, tc.VAR_STATE, ACTIVE)  # active non-root without an active parent
    assert not protocol.legitimate(small_ring, config)


def test_legitimacy_rejects_root_with_parent(small_ring):
    protocol = DepthFirstTokenCirculation()
    config = protocol.initial_configuration(small_ring)
    config.set(small_ring.root, tc.VAR_PARENT, 1)
    assert not protocol.legitimate(small_ring, config)


def test_legitimacy_rejects_level_overflow(small_ring):
    protocol = DepthFirstTokenCirculation()
    config = protocol.initial_configuration(small_ring)
    config.set(3, tc.VAR_LEVEL, small_ring.n + 5)
    assert not protocol.legitimate(small_ring, config)


def _child_parent_cycle_configuration(protocol, network):
    """The corrupted state that used to deadlock the wave: the root delegates
    to processor 1, whose own child pointer aims back at the root."""
    config = protocol.initial_configuration(network)
    config.set(network.root, tc.VAR_STATE, ACTIVE)
    config.set(network.root, tc.VAR_CHILD, 1)
    config.set(1, tc.VAR_STATE, ACTIVE)
    config.set(1, tc.VAR_PARENT, network.root)
    config.set(1, tc.VAR_LEVEL, 1)
    config.set(1, tc.VAR_CHILD, network.root)
    return config


def test_legitimacy_rejects_child_pointer_cycle(small_ring):
    protocol = DepthFirstTokenCirculation()
    config = _child_parent_cycle_configuration(protocol, small_ring)
    assert not protocol.legitimate(small_ring, config)


def test_recovers_from_child_pointer_cycle(small_ring):
    # Regression (found by the scenario engine): a delegation aiming back
    # into the active stack deadlocked the wave -- both endpoints waited for
    # each other forever and no guard was enabled.
    protocol = DepthFirstTokenCirculation()
    config = _child_parent_cycle_configuration(protocol, small_ring)
    scheduler = Scheduler(
        small_ring, protocol, daemon=CentralDaemon(policy="round_robin"), configuration=config, seed=1
    )
    assert scheduler.enabled_nodes() != ()  # the cycle must be locally detectable
    result = scheduler.run_until_legitimate(max_steps=10_000)
    assert result.converged


def test_root_clears_bogus_delegation_without_ending_the_wave(small_ring):
    # Root active, delegating to a processor that is active under a different
    # parent: the root's delegation-error action forgets the child pointer.
    protocol = DepthFirstTokenCirculation()
    config = protocol.initial_configuration(small_ring)
    config.set(0, tc.VAR_STATE, ACTIVE)
    config.set(0, tc.VAR_CHILD, 1)
    config.set(1, tc.VAR_STATE, ACTIVE)
    config.set(1, tc.VAR_PARENT, 2)
    config.set(1, tc.VAR_LEVEL, 1)
    view = ProcessorView(0, small_ring, config)
    actions = {action.name: action for action in protocol.actions(small_ring, 0)}
    assert actions[DepthFirstTokenCirculation.ACTION_ROOT_ERROR].enabled(view)
    actions[DepthFirstTokenCirculation.ACTION_ROOT_ERROR].execute(view)
    assert view.pending_writes[tc.VAR_CHILD] is None
    assert tc.VAR_STATE not in view.pending_writes  # the wave survives


def test_error_action_resets_orphan_active_processor(small_ring):
    protocol = DepthFirstTokenCirculation()
    config = protocol.initial_configuration(small_ring)
    config.set(2, tc.VAR_STATE, ACTIVE)
    config.set(2, tc.VAR_PARENT, 1)
    config.set(2, tc.VAR_LEVEL, 1)
    view = ProcessorView(2, small_ring, config)
    actions = {action.name: action for action in protocol.actions(small_ring, 2)}
    assert actions[DepthFirstTokenCirculation.ACTION_ERROR].enabled(view)
    actions[DepthFirstTokenCirculation.ACTION_ERROR].execute(view)
    assert view.pending_writes[tc.VAR_STATE] == WAIT


def test_holds_token_predicate(figure_network):
    protocol = DepthFirstTokenCirculation()
    config = protocol.initial_configuration(figure_network)
    # Root active, delegating to nobody yet: it holds the token.
    config.set(0, tc.VAR_STATE, ACTIVE)
    config.set(0, tc.VAR_WAVE, 1)
    assert DepthFirstTokenCirculation.holds_token(ProcessorView(0, figure_network, config))
    # Delegate to processor 1, which accepts: the root no longer holds it.
    config.set(0, tc.VAR_CHILD, 1)
    config.set(1, tc.VAR_STATE, ACTIVE)
    config.set(1, tc.VAR_WAVE, 1)
    config.set(1, tc.VAR_PARENT, 0)
    config.set(1, tc.VAR_LEVEL, 1)
    assert not DepthFirstTokenCirculation.holds_token(ProcessorView(0, figure_network, config))
    assert DepthFirstTokenCirculation.holds_token(ProcessorView(1, figure_network, config))


def test_single_processor_network_cycles_waves():
    network = generators.path(1)
    protocol = DepthFirstTokenCirculation()
    scheduler = Scheduler(
        network,
        protocol,
        configuration=protocol.initial_configuration(network),
        daemon=CentralDaemon("round_robin"),
        seed=0,
    )
    result = scheduler.run(max_steps=10)
    assert result.steps == 10  # keeps starting/finishing waves forever
